//===- fi/Engine.cpp - Sharded, work-stealing, resumable executor ---------===//

#include "fi/Engine.h"

#include "fi/Checkpoint.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

using namespace bec;

namespace {

FaultEffect classifyRun(const Trace &T, const Trace &Golden) {
  if (T.TraceHash == Golden.TraceHash)
    return FaultEffect::Masked;
  if (T.End == Outcome::Trap)
    return FaultEffect::Trap;
  if (T.End == Outcome::Hang)
    return FaultEffect::Hang;
  if (T.ObservableHash == Golden.ObservableHash)
    return FaultEffect::Benign;
  return FaultEffect::SDC;
}

/// Everything a finished run contributes to the report: enough to
/// classify (classifySuffix), dedup the trace archive, and size it.
/// Memoized per reachable checkpoint state — see suffixStateKey.
struct SettledSuffix {
  uint64_t TraceHash = 0;
  uint64_t ObsHash = 0;
  Outcome End = Outcome::Finished;
  uint64_t Bytes = 0; ///< The full run's approxByteSize().
};

FaultEffect classifySuffix(const SettledSuffix &S, const Trace &Golden) {
  if (S.TraceHash == Golden.TraceHash)
    return FaultEffect::Masked;
  if (S.End == Outcome::Trap)
    return FaultEffect::Trap;
  if (S.End == Outcome::Hang)
    return FaultEffect::Hang;
  if (S.ObsHash == Golden.ObservableHash)
    return FaultEffect::Benign;
  return FaultEffect::SDC;
}

/// Identity of an in-flight run's continuation, taken at a checkpoint
/// boundary. Two runs with equal keys finish identically, so the first
/// one to complete settles every later one — the paper's fault-site
/// equivalence classes, recovered dynamically:
///
///  * The full-trace hash cursor covers the PC of every executed step
///    and the address and value of every store, so equal cursors mean
///    identical paths and identical memory (the same hash-equality
///    trust the Masked classification rests on). Memory therefore
///    never needs hashing here.
///  * Live registers pin down everything the continuation can still
///    read. A register outside liveInMask(PC) is read on no path
///    before being redefined, so a lingering flip there cannot
///    influence any future instruction, side effect or outcome — which
///    is also why a masked fault's state keys equal to the *golden*
///    checkpoint at the same cycle and splices without replaying the
///    suffix.
uint64_t suffixStateKey(uint64_t Cycle, uint32_t PC, uint64_t FullHash,
                        uint64_t ObsHash, const Machine &M,
                        const std::vector<uint32_t> *LiveIn) {
  TraceHasher H;
  H.absorb(0x5faceca11u); // Format tag.
  H.absorb(Cycle);
  H.absorb(PC);
  H.absorb(FullHash);
  H.absorb(ObsHash);
  // No live-in mask for this PC = key strictly (mask of all ones).
  uint32_t Live = LiveIn && PC < LiveIn->size() ? (*LiveIn)[PC]
                                                : ~uint32_t(0);
  for (unsigned R = 1; R < NumRegs; ++R)
    if ((Live >> R) & 1) {
      H.absorb(R);
      H.absorb(M.reg(static_cast<Reg>(R)));
    }
  return H.value();
}

/// Work-stealing shard scheduler: one deque per worker, seeded with a
/// contiguous block of shard ids (contiguous = nondecreasing injection
/// cycles, so the owner's interpreter snapshot advances monotonically).
/// Owners pop from the front; an idle worker steals from the *back* of
/// the fullest victim, taking the victim's farthest-out work so the two
/// keep disjoint, mostly-monotone cycle ranges. Shard-granular work is
/// coarse enough that one mutex is cheaper than per-deque CAS traffic.
class StealScheduler {
public:
  explicit StealScheduler(unsigned Workers) : Queues(Workers) {}

  void seed(unsigned Worker, uint64_t ShardLo, uint64_t ShardHi) {
    for (uint64_t S = ShardLo; S < ShardHi; ++S)
      Queues[Worker].push_back(S);
  }

  /// \p Stolen reports whether the shard came from another worker's
  /// deque — the engine counts those, because each one risks a snapshot
  /// rebuild and together they explain flat thread scaling.
  std::optional<uint64_t> next(unsigned Me, bool &Stolen) {
    Stolen = false;
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Queues[Me].empty()) {
      uint64_t S = Queues[Me].front();
      Queues[Me].pop_front();
      return S;
    }
    size_t Victim = Queues.size(), Best = 0;
    for (size_t V = 0; V < Queues.size(); ++V)
      if (Queues[V].size() > Best) {
        Best = Queues[V].size();
        Victim = V;
      }
    if (Victim == Queues.size())
      return std::nullopt;
    uint64_t S = Queues[Victim].back();
    Queues[Victim].pop_back();
    Stolen = true;
    return S;
  }

private:
  std::mutex Mutex;
  std::vector<std::deque<uint64_t>> Queues;
};

/// Everything shared by the workers of one campaign.
struct EngineState {
  const Program *Prog;
  const Trace *Golden;
  const std::vector<PlannedRun> *Runs;
  /// Plan indices in execution order (stable-sorted by injection cycle);
  /// shard S covers Order[S*ShardSize, ...).
  std::vector<uint32_t> Order;
  uint64_t ShardSize = 0;
  uint64_t NumShards = 0;
  RunOptions RunOpts;

  /// Per-run result slots, addressed by *plan* index (not execution
  /// order), so the assembled result is independent of scheduling.
  std::vector<FaultEffect> Effects;
  std::vector<uint64_t> Hashes;
  std::vector<uint64_t> Bytes;
  /// Shard completion flags: 1 = resumed, 2 = executed here. Written by
  /// exactly one worker per shard, read after the pool joins.
  std::vector<uint8_t> Done;

  CheckpointWriter Writer;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> NewShardsDone{0};
  uint64_t StopAfterShards = 0;

  /// Prefix-checkpoint table: golden MachineState snapshots in ascending
  /// cycle order (built once before the workers start), the golden
  /// replay they came from, and the plan's live-in masks for the
  /// convergence test. Empty/false when the plan runs without prefix
  /// checkpoints.
  bool PrefixCk = false;
  std::vector<MachineState> Ckpts;
  const std::vector<uint32_t> *LiveIn = nullptr;
  Trace GoldenFinal;
  uint64_t CkBytes = 0;

  /// Suffix memo: continuation identity (suffixStateKey) -> how that
  /// continuation ends. Seeded with the golden checkpoints (so masked
  /// faults splice into the golden verdict) and grown by workers as
  /// runs complete; every value is a pure function of its key, so
  /// sharing across threads cannot change a result byte.
  std::mutex MemoMutex;
  std::unordered_map<uint64_t, SettledSuffix> SuffixMemo;

  std::optional<SettledSuffix> memoLookup(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto It = SuffixMemo.find(Key);
    if (It == SuffixMemo.end())
      return std::nullopt;
    return It->second;
  }
  void memoInsert(const std::vector<uint64_t> &Keys,
                  const SettledSuffix &S) {
    if (Keys.empty())
      return;
    std::lock_guard<std::mutex> Lock(MemoMutex);
    for (uint64_t K : Keys)
      SuffixMemo.emplace(K, S);
  }

  /// Index of the first checkpoint with cycle >= \p Cycle (a checkpoint
  /// exactly at the injection cycle is a valid convergence point: the
  /// flip just happened, zero faulty instructions ran).
  size_t firstCheckpointAtOrAfter(uint64_t Cycle) const {
    size_t Lo = 0, Hi = Ckpts.size();
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (Ckpts[Mid].CycleCount < Cycle)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }
  /// The last checkpoint with cycle <= \p Cycle, or null when none is
  /// (there is none only when the table is empty: placement starts at 0).
  const MachineState *nearestCheckpointAtOrBefore(uint64_t Cycle) const {
    size_t At = firstCheckpointAtOrAfter(Cycle);
    if (At < Ckpts.size() && Ckpts[At].CycleCount == Cycle)
      return &Ckpts[At];
    return At == 0 ? nullptr : &Ckpts[At - 1];
  }

  /// Scheduler telemetry for this invocation, written by workers with
  /// relaxed adds and folded into progress reports and the result.
  std::chrono::steady_clock::time_point StartTime;
  std::atomic<uint64_t> ExecutedRuns{0};
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> SnapshotRebuilds{0};
  std::atomic<uint64_t> CkRestores{0};
  std::atomic<uint64_t> SplicedRuns{0};
  std::atomic<uint64_t> SimCycles{0};

  std::mutex ProgressMutex;
  CampaignProgress Progress;
  std::function<void(const CampaignProgress &)> OnProgress;

  /// Profile collection (CollectProfile): per-shard records appended by
  /// workers, per-worker rows folded in when each loop exits.
  bool CollectProfile = false;
  std::mutex ProfileMutex;
  CampaignPhaseProfile Profile;

  std::mutex ErrorMutex;
  std::string Error;

  void failShard(std::string Message) {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    if (Error.empty())
      Error = std::move(Message);
    Stop.store(true);
  }

  std::pair<uint64_t, uint64_t> shardRange(uint64_t Shard) const {
    uint64_t Lo = Shard * ShardSize;
    return {Lo, std::min<uint64_t>(Order.size(), Lo + ShardSize)};
  }
};

/// Per-worker scheduler telemetry, folded into EngineState atomics and
/// the worker's trace span when the loop exits.
struct WorkerStats {
  uint64_t Runs = 0;
  uint64_t Shards = 0;
  uint64_t Steals = 0;
  uint64_t Rebuilds = 0;
  uint64_t Restores = 0;  ///< Walker restores from a golden checkpoint.
  uint64_t Spliced = 0;   ///< Runs settled by convergence splicing.
  uint64_t SimCycles = 0; ///< Interpreter instructions stepped.
  uint64_t SchedUs = 0;   ///< In Sched.next: lock wait + victim scan.
  uint64_t RunUs = 0;     ///< Shard execution minus rebuilds.
  uint64_t RebuildUs = 0; ///< Snapshot rebuilds incl. prefix catch-up.
  uint64_t RestoreUs = 0; ///< Portion of RebuildUs inside restore().
};

uint64_t elapsedUs(std::chrono::steady_clock::time_point Since) {
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Since)
                .count();
  return Us < 0 ? 0 : uint64_t(Us);
}

/// Executes one shard: advances this worker's walker to each injection
/// cycle, forks, flips, runs to completion and classifies.
void executeShard(EngineState &St, uint64_t Shard, unsigned Me,
                  std::optional<Interpreter> &Walker, bool Stolen,
                  WorkerStats &WS) {
  static const obs::Histogram ShardUs("engine.shard.us");
  static const obs::Counter CtrRestored("fi.checkpoints.restored");
  static const obs::Histogram RestoreUsHist("fi.checkpoint.restore.us");
  obs::ScopedTimerUs Timer(ShardUs);
  auto ShardStart = std::chrono::steady_clock::now();
  uint64_t RebuildUs = 0, RestoreUs = 0;
  uint64_t ShardSimCycles = 0;

  auto [Lo, Hi] = St.shardRange(Shard);
  uint64_t FirstCycle = (*St.Runs)[St.Order[Lo]].AfterCycle;
  obs::Span SpanShard("fi.shard", {{"shard", Shard},
                                   {"runs", Hi - Lo},
                                   {"stolen", uint64_t(Stolen)}});
  // A stolen out-of-order shard may sit before this worker's snapshot;
  // only then does it pay a rebuild — and with a checkpoint table the
  // rebuild restores the nearest golden snapshot at or below the
  // shard's first injection cycle instead of re-simulating from zero.
  if (!Walker || FirstCycle < Walker->cycle()) {
    auto RebuildStart = std::chrono::steady_clock::now();
    obs::Span SpanRebuild("fi.snapshot.rebuild",
                          {{"first_cycle", FirstCycle}});
    Walker.emplace(*St.Prog, St.RunOpts);
    if (const MachineState *CS = St.nearestCheckpointAtOrBefore(FirstCycle)) {
      auto RestoreStart = std::chrono::steady_clock::now();
      Walker->restore(*CS);
      RestoreUs = elapsedUs(RestoreStart);
      WS.RestoreUs += RestoreUs;
      ++WS.Restores;
      St.CkRestores.fetch_add(1, std::memory_order_relaxed);
      CtrRestored.add();
      RestoreUsHist.observeUs(RestoreUs);
    }
    // The remaining catch-up to the shard's first injection cycle is
    // the expensive half of a rebuild; running it here (instead of
    // letting the first run's runToCycle below absorb it) attributes it
    // to the rebuild phase. Same simulation either way — results can't
    // change.
    ShardSimCycles += FirstCycle - Walker->cycle();
    Walker->runToCycle(FirstCycle);
    ++WS.Rebuilds;
    St.SnapshotRebuilds.fetch_add(1, std::memory_order_relaxed);
    RebuildUs = elapsedUs(RebuildStart);
    WS.RebuildUs += RebuildUs;
  }
  uint64_t WalkerFrom = Walker->cycle();
  std::vector<uint64_t> Visited; // Keys passed on the way to completion.
  for (uint64_t K = Lo; K < Hi; ++K) {
    uint32_t Idx = St.Order[K];
    const PlannedRun &Run = (*St.Runs)[Idx];
    Walker->runToCycle(Run.AfterCycle);
    Interpreter Forked = *Walker;
    Forked.machine().flipRegBit(Run.R, Run.Bit);
    // Convergence splicing: pause the faulty run at each checkpoint
    // cycle and key its continuation (suffixStateKey). A memo hit —
    // the golden continuation for reconverged masked faults, or an
    // earlier run of the same dynamic fault class otherwise — settles
    // the run without executing its suffix. A run that completes for
    // real settles every key it passed, so each distinct continuation
    // executes once per campaign.
    std::optional<SettledSuffix> Hit;
    Visited.clear();
    for (size_t Ck = St.firstCheckpointAtOrAfter(Run.AfterCycle);
         Ck < St.Ckpts.size(); ++Ck) {
      Forked.runToCycle(St.Ckpts[Ck].CycleCount);
      if (Forked.done())
        break;
      uint64_t Key = suffixStateKey(Forked.cycle(), Forked.pc(),
                                    Forked.fullHashState(),
                                    Forked.obsHashState(),
                                    Forked.machine(), St.LiveIn);
      Hit = St.memoLookup(Key);
      if (Hit)
        break;
      Visited.push_back(Key);
    }
    if (Hit) {
      // The memoized continuation reproduces this run's trace byte for
      // byte, so the slots take exactly what a full replay would have
      // produced: its final hash and its (recording-off) archive size.
      St.Effects[Idx] = classifySuffix(*Hit, *St.Golden);
      St.Hashes[Idx] = Hit->TraceHash;
      St.Bytes[Idx] = Hit->Bytes;
      ++WS.Spliced;
    } else {
      Forked.run();
      Trace T = Forked.takeTrace();
      St.Effects[Idx] = classifyRun(T, *St.Golden);
      St.Hashes[Idx] = T.TraceHash;
      St.Bytes[Idx] = T.approxByteSize();
      St.memoInsert(Visited, {T.TraceHash, T.ObservableHash, T.End,
                              T.approxByteSize()});
    }
    ShardSimCycles += Forked.cycle() - Run.AfterCycle;
  }
  ShardSimCycles += Walker->cycle() - WalkerFrom;
  WS.SimCycles += ShardSimCycles;
  St.Done[Shard] = 2;

  if (St.Writer.isOpen()) {
    ShardRecord Rec;
    Rec.Shard = Shard;
    for (uint64_t K = Lo; K < Hi; ++K) {
      uint32_t Idx = St.Order[K];
      Rec.Effects.push_back(St.Effects[Idx]);
      Rec.Hashes.push_back(St.Hashes[Idx]);
      Rec.Bytes.push_back(St.Bytes[Idx]);
    }
    std::string Err;
    if (!St.Writer.writeShard(Rec, Err))
      St.failShard(std::move(Err));
  }

  WS.Runs += Hi - Lo;
  ++WS.Shards;
  St.ExecutedRuns.fetch_add(Hi - Lo, std::memory_order_relaxed);

  uint64_t TotalUs = elapsedUs(ShardStart);
  uint64_t RunUs = TotalUs > RebuildUs ? TotalUs - RebuildUs : 0;
  WS.RunUs += RunUs;
  if (St.CollectProfile) {
    std::lock_guard<std::mutex> Lock(St.ProfileMutex);
    St.Profile.Shards.push_back(
        {Shard, Me, Hi - Lo, Stolen, RebuildUs, RunUs, RestoreUs});
  }
  if (obs::logEnabled(obs::LogLevel::Debug))
    obs::log(obs::LogLevel::Debug, "engine.shard.done",
             {{"shard", Shard},
              {"runs", Hi - Lo},
              {"stolen", Stolen},
              {"rebuild_us", RebuildUs},
              {"run_us", RunUs},
              {"restore_us", RestoreUs}});

  {
    std::lock_guard<std::mutex> Lock(St.ProgressMutex);
    ++St.Progress.ShardsDone;
    St.Progress.RunsDone += Hi - Lo;
    St.Progress.ExecutedRuns =
        St.ExecutedRuns.load(std::memory_order_relaxed);
    St.Progress.Steals = St.Steals.load(std::memory_order_relaxed);
    St.Progress.SnapshotRebuilds =
        St.SnapshotRebuilds.load(std::memory_order_relaxed);
    St.Progress.ElapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      St.StartTime)
            .count();
    if (St.OnProgress)
      St.OnProgress(St.Progress);
  }
  uint64_t DoneNow = St.NewShardsDone.fetch_add(1) + 1;
  if (St.StopAfterShards && DoneNow >= St.StopAfterShards)
    St.Stop.store(true);
}

void workerLoop(EngineState &St, StealScheduler &Sched, unsigned Me) {
  static const obs::Counter CtrRuns("engine.runs");
  static const obs::Counter CtrShards("engine.shards");
  static const obs::Counter CtrSteals("engine.steals");
  static const obs::Counter CtrRebuilds("engine.snapshot_rebuilds");
  static const obs::Counter CtrIdleUs("engine.idle.us");

  if (obs::traceActive())
    obs::setTraceThreadName("fi-worker-" + std::to_string(Me));
  obs::Span SpanWorker(obs::traceActive()
                           ? "fi.worker-" + std::to_string(Me)
                           : std::string());

  WorkerStats WS;
  auto WallStart = std::chrono::steady_clock::now();
  std::optional<Interpreter> Walker;
  while (!St.Stop.load()) {
    // Time spent waiting on the scheduler lock or finding a victim is
    // the other half of the scaling story next to rebuilds.
    auto SchedStart = std::chrono::steady_clock::now();
    bool Stolen = false;
    std::optional<uint64_t> Shard = Sched.next(Me, Stolen);
    WS.SchedUs += elapsedUs(SchedStart);
    if (!Shard)
      break;
    if (Stolen) {
      ++WS.Steals;
      St.Steals.fetch_add(1, std::memory_order_relaxed);
    }
    executeShard(St, *Shard, Me, Walker, Stolen, WS);
  }

  CtrRuns.add(WS.Runs);
  CtrShards.add(WS.Shards);
  CtrSteals.add(WS.Steals);
  CtrRebuilds.add(WS.Rebuilds);
  CtrIdleUs.add(WS.SchedUs);
  St.SplicedRuns.fetch_add(WS.Spliced, std::memory_order_relaxed);
  St.SimCycles.fetch_add(WS.SimCycles, std::memory_order_relaxed);
  SpanWorker.arg("runs", WS.Runs);
  SpanWorker.arg("shards", WS.Shards);
  SpanWorker.arg("steals", WS.Steals);
  SpanWorker.arg("snapshot_rebuilds", WS.Rebuilds);
  SpanWorker.arg("restores", WS.Restores);
  SpanWorker.arg("spliced_runs", WS.Spliced);
  SpanWorker.arg("idle_us", WS.SchedUs);

  if (St.CollectProfile) {
    WorkerPhaseProfile WP;
    WP.Worker = Me;
    WP.WallUs = elapsedUs(WallStart);
    WP.RunUs = WS.RunUs;
    WP.RebuildUs = WS.RebuildUs;
    WP.StealUs = WS.SchedUs;
    uint64_t Busy = WS.RunUs + WS.RebuildUs + WS.SchedUs;
    WP.IdleUs = WP.WallUs > Busy ? WP.WallUs - Busy : 0;
    WP.RestoreUs = WS.RestoreUs;
    WP.Runs = WS.Runs;
    WP.Shards = WS.Shards;
    WP.Steals = WS.Steals;
    WP.Rebuilds = WS.Rebuilds;
    WP.Restores = WS.Restores;
    std::lock_guard<std::mutex> Lock(St.ProfileMutex);
    St.Profile.Workers.push_back(WP);
  }
}

CampaignResult runShardedImpl(const Program &Prog, const Trace &Golden,
                              const std::vector<PlannedRun> &Runs,
                              uint64_t PlanFingerprint,
                              const CampaignPlan *Plan,
                              const CampaignExecOptions &Exec) {
  auto Start = std::chrono::steady_clock::now();
  CampaignResult Result;
  uint64_t N = Runs.size();

  EngineState St;
  St.StartTime = Start;
  St.Prog = &Prog;
  St.Golden = &Golden;
  St.Runs = &Runs;
  St.ShardSize = campaignShardSize(N, Exec.ShardSize);
  St.NumShards = N ? (N + St.ShardSize - 1) / St.ShardSize : 0;
  St.RunOpts.Record = false;
  St.RunOpts.MaxCycles = Golden.Cycles * 16 + 4096;
  St.Effects.resize(N);
  St.Hashes.resize(N);
  St.Bytes.resize(N);
  St.Done.assign(St.NumShards, 0);
  St.StopAfterShards = Exec.StopAfterShards;
  St.OnProgress = Exec.OnProgress;
  St.CollectProfile = Exec.CollectProfile;
  St.Progress.TotalShards = St.NumShards;
  St.Progress.TotalRuns = N;

  // Execution order: stable-sorted by injection cycle. Plans built by
  // CampaignPlan are already in trace order; arbitrary caller-built run
  // lists (tests) are not. The sort is deterministic, which is what lets
  // a checkpoint written by one invocation be replayed by another.
  St.Order.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    St.Order[I] = I;
  std::stable_sort(St.Order.begin(), St.Order.end(),
                   [&](uint32_t X, uint32_t Y) {
                     return Runs[X].AfterCycle < Runs[Y].AfterCycle;
                   });

  // Prefix-checkpoint table: one fault-free replay snapshots the golden
  // machine at every placement cycle and runs on to completion, giving
  // (a) restore targets for out-of-order shards and (b) the golden
  // continuation runs splice into once they reconverge. Built before
  // the workers start and read-only afterwards.
  if (Plan && Plan->prefixCheckpoint() && N != 0) {
    static const obs::Counter CtrCreated("fi.checkpoints.created");
    static const obs::Counter CtrCkBytes("fi.checkpoints.bytes");
    obs::Span SpanTable("fi.checkpoint.table",
                        {{"period", Plan->checkpointPeriod()}});
    Interpreter GoldenWalk(Prog, St.RunOpts);
    for (uint64_t C : Plan->checkpointCycles()) {
      GoldenWalk.runToCycle(C);
      if (GoldenWalk.done() || GoldenWalk.cycle() != C)
        break;
      St.Ckpts.push_back(GoldenWalk.snapshot());
      St.CkBytes += St.Ckpts.back().byteSize();
    }
    GoldenWalk.run();
    St.SimCycles.fetch_add(GoldenWalk.cycle(), std::memory_order_relaxed);
    St.GoldenFinal = GoldenWalk.takeTrace();
    if (St.GoldenFinal.TraceHash != Golden.TraceHash) {
      // The caller's golden trace disagrees with a fresh replay (a
      // hand-built trace, or a MaxCycles mismatch). Splicing against it
      // would be unsound, so fall back to full suffix execution.
      St.Ckpts.clear();
      St.CkBytes = 0;
    } else {
      St.PrefixCk = true;
      St.LiveIn = &Plan->liveInMasks();
      // The golden continuation is the first memo entry at every
      // checkpoint: a masked fault whose live state reconverges with
      // the golden run keys equal to it and splices immediately.
      SettledSuffix GoldenEnd{St.GoldenFinal.TraceHash,
                              St.GoldenFinal.ObservableHash,
                              St.GoldenFinal.End,
                              St.GoldenFinal.approxByteSize()};
      for (const MachineState &CS : St.Ckpts)
        St.SuffixMemo.emplace(suffixStateKey(CS.CycleCount, CS.PC,
                                             CS.FullHashState,
                                             CS.ObsHashState, CS.M,
                                             St.LiveIn),
                              GoldenEnd);
      CtrCreated.add(St.Ckpts.size());
      CtrCkBytes.add(St.CkBytes);
    }
    SpanTable.arg("checkpoints", St.Ckpts.size());
    SpanTable.arg("bytes", St.CkBytes);
  }

  CheckpointHeader Header;
  Header.PlanFingerprint = PlanFingerprint;
  Header.Runs = N;
  Header.Shards = St.NumShards;
  Header.ShardSize = St.ShardSize;

  uint64_t ResumedShards = 0;
  if (!Exec.CheckpointPath.empty()) {
    if (Exec.Resume) {
      std::vector<ShardRecord> Records;
      std::string Err;
      if (!loadCheckpoint(Exec.CheckpointPath, Header, Records, Err)) {
        Result.Error = Err;
        return Result;
      }
      for (const ShardRecord &Rec : Records) {
        auto [Lo, Hi] = St.shardRange(Rec.Shard);
        for (uint64_t K = Lo; K < Hi; ++K) {
          uint32_t Idx = St.Order[K];
          St.Effects[Idx] = Rec.Effects[K - Lo];
          St.Hashes[Idx] = Rec.Hashes[K - Lo];
          St.Bytes[Idx] = Rec.Bytes[K - Lo];
        }
        if (St.Done[Rec.Shard] == 0)
          ++ResumedShards;
        St.Done[Rec.Shard] = 1;
      }
    }
    std::string Err;
    bool Append = Exec.Resume && ResumedShards > 0;
    if (!St.Writer.open(Exec.CheckpointPath, Header, Append, Err)) {
      Result.Error = Err;
      return Result;
    }
  }
  St.Progress.ShardsDone = ResumedShards;
  for (uint64_t S = 0; S < St.NumShards; ++S)
    if (St.Done[S]) {
      auto [Lo, Hi] = St.shardRange(S);
      St.Progress.RunsDone += Hi - Lo;
    }

  // Seed the scheduler with the pending shards, split into contiguous
  // blocks (one per worker) so each worker starts on a distinct stretch
  // of the golden trace.
  std::vector<uint64_t> Pending;
  for (uint64_t S = 0; S < St.NumShards; ++S)
    if (!St.Done[S])
      Pending.push_back(S);
  unsigned Workers = std::max(1u, Exec.Threads);
  if (Pending.size() < Workers)
    Workers = std::max<size_t>(1, Pending.size());
  StealScheduler Sched(Workers);
  uint64_t Block = (Pending.size() + Workers - 1) / std::max(1u, Workers);
  {
    uint64_t Next = 0;
    for (unsigned W = 0; W < Workers && Next < Pending.size(); ++W) {
      uint64_t Hi = std::min<uint64_t>(Pending.size(), Next + Block);
      for (uint64_t K = Next; K < Hi; ++K)
        Sched.seed(W, Pending[K], Pending[K] + 1);
      Next = Hi;
    }
  }

  if (Workers <= 1 || Pending.empty()) {
    workerLoop(St, Sched, 0);
  } else {
    ThreadPool Pool(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      Pool.submit([&St, &Sched, W] { workerLoop(St, Sched, W); });
    Pool.wait();
  }

  if (!St.Error.empty()) {
    Result.Error = St.Error;
    return Result;
  }

  // Assemble the report from the per-run slots, in plan order: identical
  // bytes whatever the thread count, steal order or interruption history.
  uint64_t CompletedShards = 0;
  for (uint64_t S = 0; S < St.NumShards; ++S)
    CompletedShards += St.Done[S] != 0;
  Result.Interrupted = CompletedShards != St.NumShards;
  Result.Shards = St.NumShards;
  Result.ResumedShards = ResumedShards;
  Result.Steals = St.Steals.load(std::memory_order_relaxed);
  Result.SnapshotRebuilds = St.SnapshotRebuilds.load(std::memory_order_relaxed);
  Result.CheckpointsCreated = St.Ckpts.size();
  Result.CheckpointBytes = St.CkBytes;
  Result.CheckpointRestores = St.CkRestores.load(std::memory_order_relaxed);
  Result.SplicedRuns = St.SplicedRuns.load(std::memory_order_relaxed);
  Result.SimulatedCycles = St.SimCycles.load(std::memory_order_relaxed);

  if (Exec.CollectProfile) {
    // Deterministic row order (workers finish in any order).
    std::sort(St.Profile.Workers.begin(), St.Profile.Workers.end(),
              [](const WorkerPhaseProfile &X, const WorkerPhaseProfile &Y) {
                return X.Worker < Y.Worker;
              });
    std::sort(St.Profile.Shards.begin(), St.Profile.Shards.end(),
              [](const ShardPhaseRecord &X, const ShardPhaseRecord &Y) {
                return X.Shard < Y.Shard;
              });
    St.Profile.Collected = true;
    Result.Profile = std::move(St.Profile);
  }

  std::vector<uint8_t> RunDone(N, 0);
  for (uint64_t S = 0; S < St.NumShards; ++S)
    if (St.Done[S]) {
      auto [Lo, Hi] = St.shardRange(S);
      for (uint64_t K = Lo; K < Hi; ++K)
        RunDone[St.Order[K]] = 1;
    }

  Result.Effects.resize(N);
  Result.TraceHashes.resize(N);
  std::unordered_map<uint64_t, uint64_t> Archive; // hash -> byte size
  Archive.emplace(Golden.TraceHash, Golden.approxByteSize());
  for (uint64_t I = 0; I < N; ++I) {
    if (!RunDone[I])
      continue;
    Result.Effects[I] = St.Effects[I];
    Result.TraceHashes[I] = St.Hashes[I];
    ++Result.Runs;
    ++Result.EffectCounts[static_cast<unsigned>(St.Effects[I])];
    Archive.emplace(St.Hashes[I], St.Bytes[I]);
  }
  Result.DistinctTraces = Archive.size();
  for (const auto &[Hash, SizeBytes] : Archive)
    Result.ArchiveBytes += SizeBytes;

  if (Plan && Plan->sampled() && !Result.Interrupted)
    Result.Sample =
        summarizeSample(Result.EffectCounts, Result.Runs,
                        Plan->populationRuns(), Plan->options().SampleSeed);

  Result.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

} // namespace

std::function<void(const CampaignProgress &)>
bec::throttledProgress(std::function<void(const CampaignProgress &)> Consumer) {
  // Engine invocations serialize OnProgress calls, so plain shared
  // state suffices.
  auto Last = std::make_shared<uint64_t>(0);
  return [Last, Consumer = std::move(Consumer)](const CampaignProgress &P) {
    if (!progressDue(*Last, P))
      return;
    *Last = P.ShardsDone;
    Consumer(P);
  };
}

uint64_t bec::campaignShardSize(uint64_t PlanRuns, uint64_t Requested) {
  if (Requested)
    return Requested;
  if (PlanRuns == 0)
    return 1;
  // Aim for ~64 shards: fine enough to balance and to bound re-work on
  // interruption, coarse enough that checkpoint and scheduling overhead
  // stay negligible. Never a function of the thread count, so any
  // --threads can resume any checkpoint.
  uint64_t Auto = (PlanRuns + 63) / 64;
  return std::clamp<uint64_t>(Auto, 32, 2048);
}

CampaignScalingDiagnosis
bec::diagnoseCampaignScaling(const CampaignPhaseProfile &P) {
  CampaignScalingDiagnosis D;
  uint64_t Wall = 0, Run = 0, Rebuild = 0, Restore = 0, Steal = 0, Idle = 0;
  double MaxBusy = 0, SumBusy = 0;
  for (const WorkerPhaseProfile &W : P.Workers) {
    Wall += W.WallUs;
    Run += W.RunUs;
    Rebuild += W.RebuildUs;
    Restore += W.RestoreUs;
    Steal += W.StealUs;
    Idle += W.IdleUs;
    double Busy = double(W.RunUs) + double(W.RebuildUs);
    MaxBusy = std::max(MaxBusy, Busy);
    SumBusy += Busy;
  }
  if (Wall == 0 || P.Workers.empty()) {
    D.DominantPhase = "run";
    D.Verdict = "empty profile (no workers ran)";
    return D;
  }
  D.RunFraction = double(Run) / double(Wall);
  D.RebuildFraction = double(Rebuild) / double(Wall);
  D.RestoreFraction = double(Restore) / double(Wall);
  D.StealFraction = double(Steal) / double(Wall);
  D.IdleFraction = double(Idle) / double(Wall);
  double MeanBusy = SumBusy / double(P.Workers.size());
  if (MeanBusy > 0)
    D.BusyImbalance = MaxBusy / MeanBusy;
  const struct {
    const char *Name;
    double F;
  } Phases[] = {{"run", D.RunFraction},
                {"rebuild", D.RebuildFraction},
                {"steal", D.StealFraction},
                {"idle", D.IdleFraction}};
  D.DominantPhase = Phases[0].Name;
  double BestF = Phases[0].F;
  for (const auto &Ph : Phases)
    if (Ph.F > BestF) {
      BestF = Ph.F;
      D.DominantPhase = Ph.Name;
    }
  // Thresholds pick the first phase large enough to explain flat
  // scaling; run-bound is the healthy default.
  if (D.RebuildFraction > 0.25)
    D.Verdict = "snapshot-rebuild-bound: stolen out-of-order shards pay "
                "prefix re-simulation; larger shards or stickier "
                "scheduling would help";
  else if (D.IdleFraction > 0.25)
    D.Verdict = "idle-bound: workers starve for shards; more shards "
                "(smaller --shard-size) or fewer threads would help";
  else if (D.StealFraction > 0.10)
    D.Verdict = "steal-contention: the scheduler lock serializes "
                "workers; coarser shards would help";
  else
    D.Verdict = "run-bound: fault-injection compute dominates; if "
                "speedup is still flat, the limit is outside the "
                "scheduler (memory bandwidth or shared-snapshot reuse)";
  return D;
}

std::string bec::renderCampaignProfileJson(const CampaignPhaseProfile &P) {
  CampaignScalingDiagnosis D = diagnoseCampaignScaling(P);
  JsonWriter W;
  W.beginObject();
  W.key("collected").value(P.Collected);
  W.key("workers").beginArray();
  for (const WorkerPhaseProfile &WP : P.Workers) {
    W.beginObject();
    W.key("worker").value(uint64_t(WP.Worker));
    W.key("wall_us").value(WP.WallUs);
    W.key("run_us").value(WP.RunUs);
    W.key("rebuild_us").value(WP.RebuildUs);
    W.key("restore_us").value(WP.RestoreUs);
    W.key("steal_us").value(WP.StealUs);
    W.key("idle_us").value(WP.IdleUs);
    W.key("runs").value(WP.Runs);
    W.key("shards").value(WP.Shards);
    W.key("steals").value(WP.Steals);
    W.key("rebuilds").value(WP.Rebuilds);
    W.key("restores").value(WP.Restores);
    W.endObject();
  }
  W.endArray();
  W.key("shards").beginArray();
  for (const ShardPhaseRecord &SR : P.Shards) {
    W.beginObject();
    W.key("shard").value(SR.Shard);
    W.key("worker").value(uint64_t(SR.Worker));
    W.key("runs").value(SR.Runs);
    W.key("stolen").value(SR.Stolen);
    W.key("rebuild_us").value(SR.RebuildUs);
    W.key("run_us").value(SR.RunUs);
    W.key("restore_us").value(SR.RestoreUs);
    W.endObject();
  }
  W.endArray();
  W.key("diagnosis").beginObject();
  W.key("run_fraction").value(D.RunFraction);
  W.key("rebuild_fraction").value(D.RebuildFraction);
  W.key("restore_fraction").value(D.RestoreFraction);
  W.key("steal_fraction").value(D.StealFraction);
  W.key("idle_fraction").value(D.IdleFraction);
  W.key("busy_imbalance").value(D.BusyImbalance);
  W.key("dominant_phase").value(D.DominantPhase);
  W.key("verdict").value(D.Verdict);
  W.endObject();
  W.endObject();
  return W.take();
}

CampaignResult bec::runCampaign(const Program &Prog, const Trace &Golden,
                                const CampaignPlan &Plan,
                                const CampaignExecOptions &Exec) {
  return runShardedImpl(Prog, Golden, Plan.runs(), Plan.fingerprint(), &Plan,
                        Exec);
}

CampaignResult bec::runCampaign(const Program &Prog, const Trace &Golden,
                                std::vector<PlannedRun> Plan) {
  return runShardedImpl(Prog, Golden, Plan, /*PlanFingerprint=*/0,
                        /*Plan=*/nullptr, CampaignExecOptions{});
}
