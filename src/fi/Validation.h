//===- fi/Validation.h - Empirical soundness validation (Table II) --------===//
///
/// \file
/// The paper's Section V: every prediction of the static analysis is
/// checked against fault-injection ground truth on the simulator.
/// For each dynamic segment of the golden trace, every register bit is
/// injected once and the resulting traces t((p,v^i)) are compared:
///
///   same class + same trace      -> sound and precise
///   different class + same trace -> sound but imprecise
///   same class + different trace -> UNSOUND (must never happen)
///
/// Masked sites (class s0) must reproduce the golden trace exactly, and
/// cross-segment merges (ToOutput chains) are checked between the linked
/// dynamic segments.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FI_VALIDATION_H
#define BEC_FI_VALIDATION_H

#include "fi/Campaign.h"

namespace bec {

/// Aggregate validation verdict over one program/trace.
struct ValidationResult {
  /// Pair classification within dynamic segments (Table II).
  uint64_t SoundPrecisePairs = 0;
  uint64_t SoundImprecisePairs = 0;
  uint64_t UnsoundPairs = 0;
  /// Masked-site checks: runs whose site is in [s0].
  uint64_t MaskedChecked = 0;
  uint64_t MaskedViolations = 0;
  /// Cross-segment (ToOutput chain) checks.
  uint64_t CrossChecked = 0;
  uint64_t CrossViolations = 0;
  /// Totals.
  uint64_t SegmentsChecked = 0;
  uint64_t RunsExecuted = 0;

  bool sound() const {
    return UnsoundPairs == 0 && MaskedViolations == 0 && CrossViolations == 0;
  }
};

/// Runs the validation campaign. \p MaxCycles truncates the validated
/// window of the golden trace (0 = validate the whole run).
ValidationResult validateAnalysis(const BECAnalysis &A, const Trace &Golden,
                                  uint64_t MaxCycles = 0);

} // namespace bec

#endif // BEC_FI_VALIDATION_H
