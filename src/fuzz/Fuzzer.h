//===- fuzz/Fuzzer.h - The differential fuzzing campaign ------------------===//
///
/// \file
/// Orchestration of `bec fuzz` (docs/fuzzing.md): generate a seeded
/// corpus of programs (fuzz/Generator.h), run every oracle over each
/// (fuzz/Oracles.h), minimize and bank whatever disagrees
/// (fuzz/Minimizer.h). The campaign rides the same conventions as the
/// PR-5 engine — a deterministic run budget, a JSONL checkpoint so an
/// interrupted corpus resumes without repeating finished programs, and an
/// aggregate result that is a pure function of seed + options: neither
/// thread count nor interruption/resume can change a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FUZZ_FUZZER_H
#define BEC_FUZZ_FUZZER_H

#include "fuzz/Generator.h"
#include "fuzz/Oracles.h"

#include <functional>
#include <string>
#include <vector>

namespace bec {
namespace fuzz {

/// Progress at a program boundary (what `bec fuzz --progress` prints).
struct FuzzProgress {
  uint64_t Done = 0;  ///< Programs completed this invocation.
  uint64_t Total = 0; ///< Programs to execute this invocation.
  uint64_t Mismatches = 0;
};

struct FuzzOptions {
  /// Corpus seed; program i is generated from programSeed(Seed, i).
  uint64_t Seed = 1;
  /// Number of programs to generate.
  uint64_t Count = 100;
  /// Cap on the cumulative *exhaustive* planned runs of the corpus
  /// (0 = unlimited). Programs are selected in index order until the
  /// budget is spent — a deterministic prefix, never a sample — and at
  /// least one program always runs. The CI smoke job bounds cost this
  /// way.
  uint64_t Budget = 0;
  /// Worker threads (<= 1 = inline, deterministic scheduling).
  unsigned Threads = 1;
  /// JSONL checkpoint path ("" = none); Resume loads finished programs
  /// from it first. Identical conventions to campaign checkpoints:
  /// missing file = zero resumed, wrong fingerprint = error.
  std::string CheckpointPath;
  bool Resume = false;
  /// Stop dispatching new programs once this many completed in this
  /// invocation (0 = run all). The interruption hook used by tests; the
  /// result is then Interrupted.
  uint64_t StopAfterPrograms = 0;
  /// Directory where minimized reproducers are written ("" = no
  /// banking).
  std::string BankDir;
  /// Shrink mismatching programs with the delta-debugging minimizer.
  bool Minimize = true;
  /// Cap on oracle re-evaluations per minimization.
  uint64_t MinimizeMaxTests = 256;
  GeneratorOptions Gen;
  OracleOptions Oracle;
  std::function<void(const FuzzProgress &)> OnProgress;
};

/// One mismatching program, minimized and (optionally) banked.
struct FuzzMismatch {
  uint64_t Index = 0; ///< Program index within the corpus.
  uint64_t Seed = 0;  ///< programSeed(CorpusSeed, Index).
  std::string Oracle; ///< Tag of the first disagreeing oracle.
  std::string Detail;
  uint64_t NumMismatches = 0; ///< All disagreements of this program.
  std::string Asm;            ///< The original generated assembly.
  std::string MinimizedAsm;   ///< == Asm when minimization is off/failed.
  std::string BankedPath;     ///< Where the reproducer was written, or "".
};

/// Aggregate result of one `runFuzz` invocation.
struct FuzzResult {
  /// Non-empty when the campaign could not run at all (bad checkpoint,
  /// unwritable bank directory); other fields are then unset.
  std::string Error;
  uint64_t Programs = 0;        ///< Programs selected (after the budget).
  uint64_t SkippedByBudget = 0; ///< Generated but outside the budget.
  uint64_t Executed = 0;        ///< Oracle runs in this invocation.
  uint64_t Resumed = 0;         ///< Programs trusted from the checkpoint.
  bool Interrupted = false;     ///< StopAfterPrograms fired.
  /// Fault-space totals over all finished programs.
  uint64_t ExhaustiveRuns = 0;
  uint64_t PrunedRuns = 0;
  std::array<uint64_t, NumFaultEffects> PrunedEffects{};
  /// Coverage counters over the *selected* corpus (independent of
  /// execution), for shape-diversity assertions and the report.
  std::array<uint64_t, NumOpcodes> OpcodeCount{};
  std::array<uint64_t, NumIdioms> IdiomCount{};
  /// Every mismatching program, sorted by Index.
  std::vector<FuzzMismatch> Mismatches;
  double Seconds = 0;
};

/// Runs the fuzzing campaign. The aggregate totals and mismatch set are
/// a pure function of Seed/Count/Budget/Gen/Oracle: thread count,
/// checkpointing and interruption+resume only change Seconds.
FuzzResult runFuzz(const FuzzOptions &O);

/// Writes the corpus that \p O selects (seed, count, budget) into
/// \p Dir as one `seed_<hex16>.s` file per program, creating the
/// directory if needed. Used to (re)generate tests/corpus/. Returns ""
/// on success or a diagnostic.
std::string emitCorpus(const FuzzOptions &O, const std::string &Dir);

} // namespace fuzz
} // namespace bec

#endif // BEC_FUZZ_FUZZER_H
