//===- fuzz/Minimizer.cpp - Delta-debugging reproducer minimizer ----------===//
//
// ddmin (Zeller & Hildebrandt) over the line list, followed by a
// single-line-removal fixpoint sweep for 1-minimality. Directive and
// label lines participate like any other line: removing a label that is
// still branched to simply fails to assemble, which counts as "does not
// reproduce" and keeps the candidate out.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "ir/AsmParser.h"

#include <vector>

using namespace bec;
using namespace bec::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    Lines.push_back(Text.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines,
                      const std::vector<bool> &Keep) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (Keep[I]) {
      Out += Lines[I];
      Out += '\n';
    }
  return Out;
}

} // namespace

MinimizeResult bec::fuzz::minimizeProgram(const std::string &Asm,
                                          std::string_view Name,
                                          const FailurePredicate &Fails,
                                          const MinimizeOptions &O) {
  MinimizeResult Result;
  std::vector<std::string> Lines = splitLines(Asm);
  std::vector<bool> Keep(Lines.size(), true);
  Result.LinesBefore = Lines.size();

  size_t KeptCount = Lines.size();
  auto StillFails = [&](const std::vector<bool> &Candidate) {
    if (Result.Tests >= O.MaxTests)
      return false;
    AsmParseResult Res = parseAsm(joinLines(Lines, Candidate), Name);
    if (!Res.succeeded())
      return false; // illegal candidates never count as reproducers
    ++Result.Tests;
    return Fails(*Res.Prog);
  };

  // ddmin: try removing chunks of decreasing size until the chunk size
  // reaches one line.
  size_t Chunk = (KeptCount + 1) / 2;
  while (Chunk >= 1 && Result.Tests < O.MaxTests) {
    bool Removed = false;
    size_t Start = 0;
    while (Start < Lines.size()) {
      // The chunk covers the next `Chunk` *kept* lines from Start.
      std::vector<bool> Candidate = Keep;
      size_t Marked = 0, End = Start;
      while (End < Lines.size() && Marked < Chunk) {
        if (Candidate[End]) {
          Candidate[End] = false;
          ++Marked;
        }
        ++End;
      }
      if (Marked == 0)
        break;
      if (StillFails(Candidate)) {
        Keep = std::move(Candidate);
        KeptCount -= Marked;
        Removed = true;
      }
      Start = End;
    }
    if (Chunk == 1)
      break;
    if (!Removed)
      Chunk = (Chunk + 1) / 2; // smaller chunks once nothing was removable
  }

  // 1-minimality sweep: keep removing single lines until a full pass
  // removes nothing.
  bool Progress = true;
  while (Progress && Result.Tests < O.MaxTests) {
    Progress = false;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (!Keep[I])
        continue;
      std::vector<bool> Candidate = Keep;
      Candidate[I] = false;
      if (StillFails(Candidate)) {
        Keep = std::move(Candidate);
        --KeptCount;
        Progress = true;
      }
    }
    if (!Progress)
      Result.OneMinimal = true;
  }

  Result.Asm = joinLines(Lines, Keep);
  Result.LinesAfter = KeptCount;
  return Result;
}
