//===- fuzz/Oracles.h - Differential oracles over one program -------------===//
///
/// \file
/// The judgment half of the fuzzer: given one verifier-legal program,
/// runOracles() executes the full pipeline several independent ways and
/// flags every disagreement. The primary oracle is the soundness claim
/// behind every optimization since PR 3 — the BEC-pruned (BitLevel)
/// campaign must reproduce the exhaustive ground truth verdict at every
/// planned site, and masked sites must reproduce the golden trace. The
/// secondary oracles are cheap cross-checks of the surrounding machinery:
/// print/parse round trip, fate-taxonomy validation, engine-vs-serial
/// equality, prefix-checkpointed vs from-zero engine equality, harden
/// closed loop, and session cold==warm byte equality.
///
/// Every oracle is a pure function of the program; a mismatch therefore
/// reproduces from the banked assembly alone (see docs/fuzzing.md).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FUZZ_ORACLES_H
#define BEC_FUZZ_ORACLES_H

#include "fi/Campaign.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace bec {
namespace fuzz {

/// Which oracles to run and how hard. The defaults are what `bec fuzz`
/// and the corpus test run.
struct OracleOptions {
  /// Truncates the campaign/validation window of the golden trace
  /// (0 = whole trace). Exhaustive cost is linear in this, so the fuzzer
  /// keeps it small.
  uint64_t MaxCycles = 48;
  bool CheckRoundTrip = true;
  bool CheckFates = true;
  bool CheckEngine = true;
  /// Prefix-checkpointed execution vs from-zero suffix replay on the
  /// same plan: snapshot forking and suffix splicing must never change
  /// a verdict, a trace hash, or the archive accounting.
  bool CheckCheckpoint = true;
  bool CheckHarden = true;
  bool CheckSession = true;
  /// Budget of the harden closed-loop check.
  double HardenBudget = 10.0;
  /// Thread count of the engine-vs-serial cross-check.
  unsigned EngineThreads = 2;
};

/// One oracle disagreement. \c Oracle is a stable short tag ("verdict",
/// "masked-fate", "round-trip", "fates", "engine", "checkpoint",
/// "harden", "session", "golden", "generator"); \c Detail is
/// human-readable.
struct OracleMismatch {
  std::string Oracle;
  std::string Detail;
};

/// Everything runOracles learned about one program.
struct OracleReport {
  std::vector<OracleMismatch> Mismatches;
  uint64_t ExhaustiveRuns = 0;
  uint64_t PrunedRuns = 0;
  /// Effect counts of the pruned campaign, indexed by FaultEffect.
  std::array<uint64_t, NumFaultEffects> PrunedEffects{};

  bool ok() const { return Mismatches.empty(); }
};

/// The primary differential comparison, exposed separately so tests can
/// feed it corrupted inputs: every pruned run must lie inside the
/// exhaustive site coverage and reproduce the exhaustive effect at the
/// same (cycle, reg, bit) site. Appends to \p Mismatches; returns the
/// number appended. (Masked sites and cross-segment fates are covered by
/// the validation oracle inside runOracles.)
size_t compareVerdicts(const std::vector<PlannedRun> &ExPlan,
                       const std::vector<FaultEffect> &ExEffects,
                       const std::vector<PlannedRun> &PrunedPlan,
                       const std::vector<FaultEffect> &PrunedEffects,
                       std::vector<OracleMismatch> &Mismatches);

/// Runs every enabled oracle over \p Prog (verified, CFG built).
OracleReport runOracles(const Program &Prog, const OracleOptions &O = {});

} // namespace fuzz
} // namespace bec

#endif // BEC_FUZZ_ORACLES_H
