//===- fuzz/Generator.cpp - Seeded assembly program generator -------------===//
//
// Emits assembly *text*, then assembles it with the production AsmParser:
// the generator can only ever hand the oracles a program that the real
// parser and verifier accepted, and the text itself is the artifact that
// gets minimized and banked into tests/corpus/.
//
// Safety by construction (no generated program can hang or trap in its
// golden run):
//   - every loop is a bounded down-counter on s1 with a unique label;
//   - all other branches are forward skips;
//   - memory accesses go through t5 = &buf with offsets aligned to the
//     access size and inside the buffer;
//   - immediates are drawn inside the verifier's width-dependent range.
// Injected runs may of course still trap or hang — that is the point.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "ir/AsmParser.h"
#include "support/Debug.h"
#include "support/Xoshiro.h"

using namespace bec;
using namespace bec::fuzz;

const char *bec::fuzz::idiomName(Idiom I) {
  switch (I) {
  case Idiom::AluChain:
    return "alu-chain";
  case Idiom::BitTwiddle:
    return "bit-twiddle";
  case Idiom::LoopReduction:
    return "loop-reduction";
  case Idiom::MemoryMix:
    return "memory-mix";
  case Idiom::SkipBranch:
    return "skip-branch";
  case Idiom::CompareChain:
    return "compare-chain";
  }
  bec_unreachable("invalid idiom");
}

uint64_t bec::fuzz::programSeed(uint64_t CorpusSeed, uint64_t Index) {
  // splitmix64 over a Weyl sequence keyed by the corpus seed: adjacent
  // indices land far apart, and the mapping is independent of execution
  // order (shards and threads derive the same per-program seed).
  uint64_t Z = CorpusSeed + 0x9e3779b97f4a7c15ull * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

namespace {

/// General-purpose register pool the idioms draw from. Excluded on
/// purpose: s1 (loop down-counter), t5 (memory base), a0 (result).
constexpr const char *Pool[] = {"t0", "t1", "t2", "t3",
                                "t4", "t6", "s2", "s3"};
constexpr unsigned PoolSize = sizeof(Pool) / sizeof(Pool[0]);

/// Number of 32-bit words in the .data buffer of memory-using programs.
constexpr unsigned BufWords = 8;

class Emitter {
public:
  Emitter(uint64_t Seed, const GeneratorOptions &O) : R(Seed), O(O) {}

  GeneratedProgram run(uint64_t Seed) {
    GeneratedProgram G;
    G.Seed = Seed;
    G.Name = "fuzz-" + hex16(Seed);

    W = O.Widths.empty() ? 32 : O.Widths[R.below(O.Widths.size())];
    UseMemory = O.AllowMemory && W == 32 && R.chance(2, 3);

    Asm += "# fuzz seed 0x" + hex16(Seed) + "\n";
    Asm += ".width " + std::to_string(W) + "\n";
    if (UseMemory) {
      Asm += ".data\n";
      Asm += "buf:\n";
      for (unsigned I = 0; I < BufWords; ++I)
        Asm += "  .word " + std::to_string(R.below(1 << 16)) + "\n";
      Asm += ".text\n";
    }
    Asm += "main:\n";

    // Seed the register pool so every idiom has live inputs.
    for (unsigned I = 0; I < PoolSize; ++I)
      line(std::string("li ") + Pool[I] + ", " + std::to_string(smallImm()));
    if (UseMemory)
      line("la t5, buf");

    Idiom Menu[NumIdioms];
    unsigned MenuSize = 0;
    Menu[MenuSize++] = Idiom::AluChain;
    Menu[MenuSize++] = Idiom::BitTwiddle;
    Menu[MenuSize++] = Idiom::LoopReduction;
    Menu[MenuSize++] = Idiom::SkipBranch;
    Menu[MenuSize++] = Idiom::CompareChain;
    if (UseMemory)
      Menu[MenuSize++] = Idiom::MemoryMix;

    unsigned Blocks =
        static_cast<unsigned>(R.range(O.MinBlocks, std::max(O.MinBlocks,
                                                            O.MaxBlocks)));
    for (unsigned B = 0; B < Blocks; ++B) {
      Idiom Pick = Menu[R.below(MenuSize)];
      ++IdiomCount[static_cast<unsigned>(Pick)];
      emitIdiom(Pick);
    }

    // Observable tail: two outputs plus the return value, so SDC vs
    // benign classification has real signal to work with.
    line(std::string("out ") + reg());
    line(std::string("out ") + reg());
    line(std::string("mv a0, ") + reg());
    line("ret");

    AsmParseResult Res = parseAsm(Asm, G.Name);
    G.Asm = std::move(Asm);
    G.IdiomCount = IdiomCount;
    if (!Res.succeeded()) {
      G.Error = Res.diagText();
      return G;
    }
    G.Prog = std::move(*Res.Prog);
    for (const Instruction &I : G.Prog.Instrs)
      ++G.OpcodeCount[static_cast<unsigned>(I.Op)];
    return G;
  }

private:
  static std::string hex16(uint64_t V) {
    static const char *Digits = "0123456789abcdef";
    std::string S(16, '0');
    for (int I = 15; I >= 0; --I, V >>= 4)
      S[static_cast<size_t>(I)] = Digits[V & 0xf];
    return S;
  }

  const char *reg() { return Pool[R.below(PoolSize)]; }

  /// Non-negative immediate that fits every width >= 2 we generate:
  /// [0, 2^min(W-1, 8) - 1].
  int64_t smallImm() {
    unsigned Bits = std::min(W - 1, 8u);
    return static_cast<int64_t>(R.below(uint64_t(1) << Bits));
  }

  /// Signed immediate for addi-style ops; negatives stay above the
  /// verifier's lower bound -(2^(W-1)).
  int64_t signedImm() {
    int64_t V = smallImm();
    return R.chance(1, 4) ? -V : V;
  }

  void line(const std::string &S) { Asm += "  " + S + "\n"; }

  void op3(const char *Mnemonic) {
    line(std::string(Mnemonic) + " " + reg() + ", " + reg() + ", " + reg());
  }

  void opImm(const char *Mnemonic, int64_t Imm) {
    line(std::string(Mnemonic) + " " + reg() + ", " + reg() + ", " +
         std::to_string(Imm));
  }

  void emitIdiom(Idiom Pick) {
    switch (Pick) {
    case Idiom::AluChain:
      emitAluChain();
      return;
    case Idiom::BitTwiddle:
      emitBitTwiddle();
      return;
    case Idiom::LoopReduction:
      emitLoopReduction();
      return;
    case Idiom::MemoryMix:
      emitMemoryMix();
      return;
    case Idiom::SkipBranch:
      emitSkipBranch();
      return;
    case Idiom::CompareChain:
      emitCompareChain();
      return;
    }
    bec_unreachable("invalid idiom");
  }

  void emitAluChain() {
    static const char *RRR[] = {"add", "sub", "and", "or", "xor"};
    static const char *RRI[] = {"addi", "andi", "ori", "xori"};
    static const char *MulDiv[] = {"mul", "mulhu", "div", "divu", "rem", "remu"};
    unsigned N = static_cast<unsigned>(R.range(3, 6));
    for (unsigned I = 0; I < N; ++I) {
      unsigned Kind = static_cast<unsigned>(R.below(O.AllowMulDiv ? 4 : 3));
      if (Kind == 0)
        op3(RRR[R.below(5)]);
      else if (Kind == 1)
        opImm(RRI[R.below(4)], signedImm());
      else if (Kind == 2 && W == 32 && R.chance(1, 3))
        line(std::string("lui ") + reg() + ", " + std::to_string(R.below(64)));
      else if (Kind == 3)
        op3(MulDiv[R.below(6)]);
      else
        line(std::string("mv ") + reg() + ", " + reg());
    }
  }

  void emitBitTwiddle() {
    static const char *ShImm[] = {"slli", "srli", "srai"};
    static const char *ShReg[] = {"sll", "srl", "sra"};
    static const char *Mix[] = {"xor", "and", "or"};
    unsigned N = static_cast<unsigned>(R.range(3, 6));
    for (unsigned I = 0; I < N; ++I) {
      switch (R.below(5)) {
      case 0:
        opImm(ShImm[R.below(3)], static_cast<int64_t>(R.below(W)));
        break;
      case 1:
        op3(ShReg[R.below(3)]);
        break;
      case 2:
        op3(Mix[R.below(3)]);
        break;
      case 3:
        opImm(R.chance(1, 2) ? "xori" : "andi", smallImm());
        break;
      default:
        line(std::string(R.chance(1, 2) ? "not " : "neg ") + reg() + ", " +
             reg());
        break;
      }
    }
  }

  void emitLoopReduction() {
    unsigned Iters = static_cast<unsigned>(
        R.range(O.MinLoopIters, std::max(O.MinLoopIters, O.MaxLoopIters)));
    std::string Label = "loop" + std::to_string(NextLabel++);
    const char *Acc = reg();
    line("li s1, " + std::to_string(Iters));
    Asm += Label + ":\n";
    unsigned N = static_cast<unsigned>(R.range(2, 4));
    for (unsigned I = 0; I < N; ++I) {
      switch (R.below(4)) {
      case 0:
        line(std::string("add ") + Acc + ", " + Acc + ", " + reg());
        break;
      case 1:
        line(std::string("xor ") + Acc + ", " + Acc + ", " + reg());
        break;
      case 2:
        line(std::string("addi ") + Acc + ", " + Acc + ", " +
             std::to_string(signedImm()));
        break;
      default:
        line(std::string("slli ") + Acc + ", " + Acc + ", 1");
        break;
      }
    }
    line("addi s1, s1, -1");
    line("bnez s1, " + Label);
  }

  void emitMemoryMix() {
    unsigned N = static_cast<unsigned>(R.range(2, 4));
    for (unsigned I = 0; I < N; ++I) {
      unsigned Size = 1u << R.below(3); // 1, 2, or 4 bytes
      uint64_t Offset = Size * R.below(BufWords * 4 / Size);
      std::string Addr = std::to_string(Offset) + "(t5)";
      bool IsStore = R.chance(1, 2);
      const char *Mnemonic;
      if (Size == 4)
        Mnemonic = IsStore ? "sw" : "lw";
      else if (Size == 2)
        Mnemonic = IsStore ? "sh" : (R.chance(1, 2) ? "lh" : "lhu");
      else
        Mnemonic = IsStore ? "sb" : (R.chance(1, 2) ? "lb" : "lbu");
      line(std::string(Mnemonic) + " " + reg() + ", " + Addr);
    }
  }

  void emitSkipBranch() {
    static const char *Zero[] = {"beqz", "bnez", "blez", "bgtz"};
    static const char *Two[] = {"beq", "bne", "blt", "bge", "bltu", "bgeu"};
    std::string Label = "skip" + std::to_string(NextLabel++);
    if (R.chance(1, 2))
      line(std::string(Zero[R.below(4)]) + " " + reg() + ", " + Label);
    else
      line(std::string(Two[R.below(6)]) + " " + reg() + ", " + reg() + ", " +
           Label);
    unsigned N = static_cast<unsigned>(R.range(1, 3));
    for (unsigned I = 0; I < N; ++I)
      if (R.chance(1, 2))
        op3(R.chance(1, 2) ? "add" : "xor");
      else
        opImm("addi", signedImm());
    Asm += Label + ":\n";
  }

  void emitCompareChain() {
    unsigned N = static_cast<unsigned>(R.range(2, 4));
    for (unsigned I = 0; I < N; ++I) {
      switch (R.below(4)) {
      case 0:
        op3(R.chance(1, 2) ? "slt" : "sltu");
        break;
      case 1:
        opImm(R.chance(1, 2) ? "slti" : "sltiu", smallImm());
        break;
      case 2:
        line(std::string(R.chance(1, 2) ? "seqz " : "snez ") + reg() + ", " +
             reg());
        break;
      default:
        op3(R.chance(1, 2) ? "and" : "or");
        break;
      }
    }
  }

  Xoshiro256 R;
  const GeneratorOptions &O;
  unsigned W = 32;
  bool UseMemory = false;
  std::string Asm;
  std::array<uint32_t, NumIdioms> IdiomCount{};
  unsigned NextLabel = 0;
};

} // namespace

GeneratedProgram bec::fuzz::generateProgram(uint64_t Seed,
                                            const GeneratorOptions &Options) {
  return Emitter(Seed, Options).run(Seed);
}
