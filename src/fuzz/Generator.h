//===- fuzz/Generator.h - Seeded assembly program generator ---------------===//
///
/// \file
/// Deterministic generator of verifier-legal assembly programs for the
/// differential fuzzer (`bec fuzz`, docs/fuzzing.md). A program is grown
/// as a sequence of *idiom* templates — ALU chains, bit-twiddling runs,
/// bounded loop-carried reductions, aligned memory mixes, forward skip
/// branches, compare chains — stitched over a shared register pool, then
/// assembled with the real AsmParser so every emitted program has passed
/// the verifier before the oracles ever see it.
///
/// Determinism contract: generateProgram(Seed, Options) is a pure function
/// of its arguments. The same seed yields byte-identical assembly on every
/// run, thread, and platform (the generator draws only from Xoshiro256).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FUZZ_GENERATOR_H
#define BEC_FUZZ_GENERATOR_H

#include "ir/Program.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace bec {
namespace fuzz {

/// The idiom templates the generator composes. Coverage counters are kept
/// per idiom so tests can assert that different seeds reach different
/// shapes (and that a corpus exercises the whole menu).
enum class Idiom : uint8_t {
  AluChain,      ///< straight-line register/immediate ALU run
  BitTwiddle,    ///< shift/mask/xor chains (the BEC sweet spot)
  LoopReduction, ///< bounded down-counter loop carrying an accumulator
  MemoryMix,     ///< aligned loads/stores against the .data buffer
  SkipBranch,    ///< forward conditional branch over a short block
  CompareChain,  ///< slt/sltiu-style predicates combined with ALU ops
};

inline constexpr unsigned NumIdioms =
    static_cast<unsigned>(Idiom::CompareChain) + 1;

/// Human-readable idiom name (stable; used in reports and docs).
const char *idiomName(Idiom I);

/// Shape knobs. The defaults produce small programs whose exhaustive
/// campaigns stay cheap enough for differential runs at scale.
struct GeneratorOptions {
  /// Number of idiom blocks composed per program, drawn from
  /// [MinBlocks, MaxBlocks].
  unsigned MinBlocks = 2;
  unsigned MaxBlocks = 5;
  /// Loop-carried reductions iterate a down counter in
  /// [MinLoopIters, MaxLoopIters].
  unsigned MinLoopIters = 2;
  unsigned MaxLoopIters = 5;
  /// Permit memory idioms (only taken when the drawn width is 32, since
  /// the verifier restricts loads/stores to 32-bit programs).
  bool AllowMemory = true;
  /// Permit mul/div/rem opcodes.
  bool AllowMulDiv = true;
  /// Register widths to draw from.
  std::vector<unsigned> Widths = {4, 8, 16, 32};
};

/// One generated program: the assembly text (the canonical artifact — it
/// is what gets banked, minimized, and committed), its parsed form, and
/// coverage counters over the opcode and idiom mix.
struct GeneratedProgram {
  uint64_t Seed = 0;
  std::string Name;
  std::string Asm;
  Program Prog;
  /// Parser/verifier diagnostics. Empty for every legal generation; a
  /// non-empty value is itself a generator bug the fuzzer reports.
  std::string Error;
  std::array<uint32_t, NumOpcodes> OpcodeCount{};
  std::array<uint32_t, NumIdioms> IdiomCount{};
};

/// Derives the per-program seed for index \p Index of a corpus run seeded
/// with \p CorpusSeed (splitmix64-style mixing; collision-free in
/// practice and independent of execution order).
uint64_t programSeed(uint64_t CorpusSeed, uint64_t Index);

/// Generates one program from \p Seed. Pure and deterministic; see the
/// determinism contract above.
GeneratedProgram generateProgram(uint64_t Seed,
                                 const GeneratorOptions &Options = {});

} // namespace fuzz
} // namespace bec

#endif // BEC_FUZZ_GENERATOR_H
