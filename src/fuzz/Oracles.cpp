//===- fuzz/Oracles.cpp - Differential oracles over one program -----------===//

#include "fuzz/Oracles.h"

#include "api/AnalysisSession.h"
#include "api/Queries.h"
#include "api/Serialize.h"
#include "fi/CampaignPlan.h"
#include "fi/Engine.h"
#include "fi/Validation.h"
#include "ir/AsmParser.h"
#include "obs/Trace.h"
#include "sim/Interpreter.h"

#include <map>

using namespace bec;
using namespace bec::fuzz;

namespace {

/// Site key of one planned run: (cycle, register, bit). Cycle counts of
/// fuzz windows are tiny, but the key stays collision-free up to 2^40
/// cycles regardless.
uint64_t siteKey(const PlannedRun &Run) {
  return (Run.AfterCycle << 16) | (uint64_t(Run.R) << 8) | Run.Bit;
}

std::string siteString(const PlannedRun &Run) {
  return "cycle " + std::to_string(Run.AfterCycle) + ", r" +
         std::to_string(Run.R) + ", bit " + std::to_string(Run.Bit);
}

void mismatch(std::vector<OracleMismatch> &Out, const char *Oracle,
              std::string Detail) {
  Out.push_back({Oracle, std::move(Detail)});
}

} // namespace

size_t bec::fuzz::compareVerdicts(const std::vector<PlannedRun> &ExPlan,
                                  const std::vector<FaultEffect> &ExEffects,
                                  const std::vector<PlannedRun> &PrunedPlan,
                                  const std::vector<FaultEffect> &PrunedEffects,
                                  std::vector<OracleMismatch> &Mismatches) {
  size_t Before = Mismatches.size();
  if (ExPlan.size() != ExEffects.size() ||
      PrunedPlan.size() != PrunedEffects.size()) {
    mismatch(Mismatches, "verdict",
             "plan/effect size mismatch (exhaustive " +
                 std::to_string(ExPlan.size()) + "/" +
                 std::to_string(ExEffects.size()) + ", pruned " +
                 std::to_string(PrunedPlan.size()) + "/" +
                 std::to_string(PrunedEffects.size()) + ")");
    return Mismatches.size() - Before;
  }
  std::map<uint64_t, FaultEffect> BySite;
  for (size_t I = 0; I < ExPlan.size(); ++I)
    BySite[siteKey(ExPlan[I])] = ExEffects[I];
  for (size_t I = 0; I < PrunedPlan.size(); ++I) {
    auto It = BySite.find(siteKey(PrunedPlan[I]));
    if (It == BySite.end()) {
      mismatch(Mismatches, "verdict",
               "pruned site outside exhaustive coverage: " +
                   siteString(PrunedPlan[I]));
      continue;
    }
    if (It->second != PrunedEffects[I])
      mismatch(Mismatches, "verdict",
               "pruned " + std::string(faultEffectName(PrunedEffects[I])) +
                   " vs exhaustive " + faultEffectName(It->second) + " at " +
                   siteString(PrunedPlan[I]) + " (class " +
                   std::to_string(PrunedPlan[I].ClassRep) + ")");
  }
  return Mismatches.size() - Before;
}

OracleReport bec::fuzz::runOracles(const Program &Prog,
                                   const OracleOptions &O) {
  OracleReport Report;

  // Secondary oracle: print/parse round trip. The printed assembly must
  // reassemble to the exact semantic content (the session's content key
  // covers instructions, width, memory image and entry point) and the
  // printer must be idempotent over the round trip.
  if (O.CheckRoundTrip) {
    obs::Span Span("fuzz.oracle.round-trip");
    std::string Printed = Prog.toString();
    AsmParseResult Re = parseAsm(Printed, Prog.Name);
    if (!Re.succeeded()) {
      mismatch(Report.Mismatches, "round-trip",
               "printed program does not reassemble: " + Re.diagText());
    } else {
      if (AnalysisSession::contentKeyOf(Prog) !=
          AnalysisSession::contentKeyOf(*Re.Prog))
        mismatch(Report.Mismatches, "round-trip",
                 "reassembled program differs semantically from the "
                 "original");
      if (Re.Prog->toString() != Printed)
        mismatch(Report.Mismatches, "round-trip",
                 "printer is not idempotent over print/parse");
    }
  }

  // The golden run. Generated programs terminate by construction; a
  // non-finishing golden run is a generator bug worth reporting.
  Trace Golden = [&] {
    obs::Span Span("fuzz.oracle.golden");
    return simulate(Prog);
  }();
  if (Golden.End != Outcome::Finished) {
    mismatch(Report.Mismatches, "golden",
             std::string("golden run ended in ") + outcomeName(Golden.End));
    return Report;
  }

  uint64_t Limit = O.MaxCycles ? std::min<uint64_t>(O.MaxCycles, Golden.Cycles)
                               : Golden.Cycles;
  BECAnalysis A = BECAnalysis::run(Prog);

  // Primary oracle: BEC-pruned verdicts vs exhaustive ground truth. The
  // bit-level window is one cycle short of the exhaustive window so every
  // pruned injection cycle (C + 1) lies inside exhaustive coverage.
  std::vector<PlannedRun> ExPlan;
  CampaignResult Ex;
  {
    obs::Span Span("fuzz.oracle.exhaustive");
    ExPlan = planCampaign(A, Golden, PlanKind::Exhaustive, Limit);
    Ex = runCampaign(Prog, Golden, ExPlan);
  }
  Report.ExhaustiveRuns = Ex.Runs;
  std::vector<PlannedRun> BitPlan;
  CampaignResult Bit;
  if (Limit > 1) {
    obs::Span Span("fuzz.oracle.bit-level");
    BitPlan = planCampaign(A, Golden, PlanKind::BitLevel, Limit - 1);
    Bit = runCampaign(Prog, Golden, BitPlan);
    Report.PrunedRuns = Bit.Runs;
    Report.PrunedEffects = Bit.EffectCounts;
    compareVerdicts(ExPlan, Ex.Effects, BitPlan, Bit.Effects,
                    Report.Mismatches);
  }

  // Fate-classification oracle: the Table II validation campaign. This
  // covers the masked sites (class s0 must reproduce the golden trace)
  // and the cross-segment ToOutput chains the verdict comparison cannot
  // see.
  if (O.CheckFates) {
    obs::Span Span("fuzz.oracle.fates");
    ValidationResult V = validateAnalysis(A, Golden, Limit);
    if (!V.sound())
      mismatch(Report.Mismatches, "fates",
               "validation found " + std::to_string(V.UnsoundPairs) +
                   " unsound pairs, " + std::to_string(V.MaskedViolations) +
                   " masked violations, " +
                   std::to_string(V.CrossViolations) + " cross violations");
  }

  // Engine oracle: the sharded executor must be byte-equivalent to the
  // serial one on the same plan (any thread count; we use a small one).
  if (O.CheckEngine && Limit > 1) {
    obs::Span Span("fuzz.oracle.engine");
    PlanOptions PO;
    PO.Kind = PlanKind::BitLevel;
    PO.MaxCycles = Limit - 1;
    CampaignPlan Plan = CampaignPlan::build(A, Golden, PO);
    CampaignExecOptions Exec;
    Exec.Threads = O.EngineThreads;
    CampaignResult Par = runCampaign(Prog, Golden, Plan, Exec);
    if (!Par.Error.empty())
      mismatch(Report.Mismatches, "engine", "engine error: " + Par.Error);
    else if (Par.Effects != Bit.Effects || Par.TraceHashes != Bit.TraceHashes ||
             Par.EffectCounts != Bit.EffectCounts)
      mismatch(Report.Mismatches, "engine",
               "sharded engine result differs from the serial executor");
  }

  // Checkpoint oracle: prefix-checkpointed execution (dense explicit
  // placement, so short fuzz windows still get several snapshots) vs
  // the same plan with checkpointing off. Fork-from-snapshot and
  // suffix splicing must be invisible in every result byte, including
  // the archive accounting a spliced run fabricates from the memoized
  // suffix.
  if (O.CheckCheckpoint && Limit > 1) {
    obs::Span Span("fuzz.oracle.checkpoint");
    PlanOptions On;
    On.Kind = PlanKind::BitLevel;
    On.MaxCycles = Limit - 1;
    On.CheckpointEveryK = 3;
    PlanOptions Off = On;
    Off.PrefixCheckpoint = false;
    CampaignResult COn =
        runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, On), {});
    CampaignResult COff =
        runCampaign(Prog, Golden, CampaignPlan::build(A, Golden, Off), {});
    if (!COn.Error.empty() || !COff.Error.empty())
      mismatch(Report.Mismatches, "checkpoint",
               "engine error: " + COn.Error + COff.Error);
    else if (COn.Effects != COff.Effects ||
             COn.TraceHashes != COff.TraceHashes ||
             COn.EffectCounts != COff.EffectCounts ||
             COn.DistinctTraces != COff.DistinctTraces ||
             COn.ArchiveBytes != COff.ArchiveBytes)
      mismatch(Report.Mismatches, "checkpoint",
               "prefix-checkpointed result differs from from-zero replay");
  }

  // Harden oracle: the closed loop must hold on every program whose
  // golden run finishes — hardened output identical, vulnerability not
  // increased, every detection probe caught.
  if (O.CheckHarden) {
    obs::Span Span("fuzz.oracle.harden");
    AnalysisSession S;
    CachedProgramPtr P = S.intern(Prog);
    HardenOptions HO;
    HO.BudgetPercent = O.HardenBudget;
    auto Point = S.get<HardenQuery>(P, HO);
    if (!Point->Check.ok())
      mismatch(Report.Mismatches, "harden",
               std::string("closed-loop hardening check failed (verifier ") +
                   (Point->Check.VerifierClean ? "clean" : "DIRTY") +
                   ", outputs " +
                   (Point->Check.OutputsMatch ? "match" : "DIFFER") +
                   ", vulnerability " +
                   (Point->Check.VulnerabilityReduced ? "reduced" : "NOT "
                                                                    "reduced") +
                   ", probes " +
                   std::to_string(Point->Check.DetectionsCaught) + "/" +
                   std::to_string(Point->Check.DetectionProbes) + ")");
  }

  // Session oracle: cached results must render byte-identically to cold
  // ones, across repeated queries and across fresh sessions.
  if (O.CheckSession) {
    obs::Span Span("fuzz.oracle.session");
    std::vector<std::string> Names = {Prog.Name};
    auto Render = [&](AnalysisSession &S, AnalysisSession::TargetId T) {
      std::vector<std::shared_ptr<const AnalyzeResult>> Results = {
          S.get<AnalyzeQuery>(T)};
      return renderAnalyzeJson(Names, Results);
    };
    AnalysisSession S1;
    AnalysisSession::TargetId T1 = S1.addProgram(Prog.Name, Prog);
    std::string Cold = Render(S1, T1);
    std::string Warm = Render(S1, T1);
    if (Cold != Warm)
      mismatch(Report.Mismatches, "session",
               "warm analyze render differs from cold");
    AnalysisSession S2;
    std::string Cold2 = Render(S2, S2.addProgram(Prog.Name, Prog));
    if (Cold != Cold2)
      mismatch(Report.Mismatches, "session",
               "cold analyze render differs across sessions");
  }

  return Report;
}
