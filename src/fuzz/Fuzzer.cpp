//===- fuzz/Fuzzer.cpp - The differential fuzzing campaign ----------------===//
//
// Determinism invariants (asserted by FuzzTest and DriverTest):
//   - the selected corpus is a pure function of Seed/Count/Budget/Gen/
//     Oracle (the budget pre-pass walks programs in index order and takes
//     the maximal affordable prefix);
//   - per-program verdicts are pure functions of the program, so the
//     aggregate totals are order-independent sums and identical under any
//     thread count;
//   - the checkpoint stores per-program records addressed by index; a
//     resumed campaign trusts clean records, re-runs mismatching ones
//     (to regenerate details and reproducers), and converges on the same
//     aggregate as an uninterrupted run.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "sim/Interpreter.h"
#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

using namespace bec;
using namespace bec::fuzz;

namespace {

std::string hex16(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[static_cast<size_t>(I)] = Digits[V & 0xf];
  return S;
}

/// Fingerprint over every option that can change a verdict or the
/// selected corpus. Threads, checkpointing, interruption, banking and
/// minimization are execution-side and deliberately excluded (same rule
/// as the campaign engine's plan fingerprint).
uint64_t optionsFingerprint(const FuzzOptions &O) {
  TraceHasher H;
  H.absorb(0xbecf077e00000001ull);
  H.absorb(O.Seed);
  H.absorb(O.Count);
  H.absorb(O.Budget);
  H.absorb(O.Gen.MinBlocks);
  H.absorb(O.Gen.MaxBlocks);
  H.absorb(O.Gen.MinLoopIters);
  H.absorb(O.Gen.MaxLoopIters);
  H.absorb((uint64_t(O.Gen.AllowMemory) << 1) | O.Gen.AllowMulDiv);
  H.absorb(O.Gen.Widths.size());
  for (unsigned W : O.Gen.Widths)
    H.absorb(W);
  H.absorb(O.Oracle.MaxCycles);
  H.absorb((uint64_t(O.Oracle.CheckRoundTrip) << 5) |
           (uint64_t(O.Oracle.CheckFates) << 4) |
           (uint64_t(O.Oracle.CheckEngine) << 3) |
           (uint64_t(O.Oracle.CheckCheckpoint) << 2) |
           (uint64_t(O.Oracle.CheckHarden) << 1) |
           uint64_t(O.Oracle.CheckSession));
  H.absorb(static_cast<uint64_t>(O.Oracle.HardenBudget * 1000.0));
  return H.value();
}

/// The deterministic budget pre-pass: programs in index order, maximal
/// affordable prefix, at least one program.
struct CorpusSelection {
  std::vector<uint64_t> Seeds; ///< Seeds[i] = programSeed(Seed, i).
  uint64_t Skipped = 0;
  std::array<uint64_t, NumOpcodes> OpcodeCount{};
  std::array<uint64_t, NumIdioms> IdiomCount{};
};

CorpusSelection selectCorpus(const FuzzOptions &O) {
  CorpusSelection Sel;
  uint64_t Spent = 0;
  for (uint64_t I = 0; I < O.Count; ++I) {
    uint64_t Seed = programSeed(O.Seed, I);
    GeneratedProgram G = generateProgram(Seed, O.Gen);
    uint64_t Cost = 0;
    if (G.Error.empty()) {
      // Exhaustive plan size of this program's oracle window — the exact
      // cost formula of planCampaign(Exhaustive).
      Trace Golden = simulate(G.Prog);
      uint64_t Limit = O.Oracle.MaxCycles
                           ? std::min<uint64_t>(O.Oracle.MaxCycles,
                                                Golden.Cycles)
                           : Golden.Cycles;
      Cost = Limit * NumRegs * G.Prog.Width;
    }
    if (O.Budget && !Sel.Seeds.empty() && Spent + Cost > O.Budget) {
      Sel.Skipped = O.Count - I;
      break;
    }
    Spent += Cost;
    Sel.Seeds.push_back(Seed);
    for (unsigned Op = 0; Op < NumOpcodes; ++Op)
      Sel.OpcodeCount[Op] += G.OpcodeCount[Op];
    for (unsigned Id = 0; Id < NumIdioms; ++Id)
      Sel.IdiomCount[Id] += G.IdiomCount[Id];
  }
  return Sel;
}

/// One finished program's durable record.
struct ProgramRecord {
  uint64_t ExRuns = 0;
  uint64_t BitRuns = 0;
  std::array<uint64_t, NumFaultEffects> Effects{};
  uint64_t Mismatches = 0;
};

std::string recordLine(uint64_t Index, uint64_t Seed,
                       const ProgramRecord &R) {
  JsonWriter W;
  W.beginObject();
  W.key("program").value(Index);
  W.key("seed").value(hex16(Seed));
  W.key("ex_runs").value(R.ExRuns);
  W.key("bit_runs").value(R.BitRuns);
  W.key("effects").beginArray();
  for (uint64_t E : R.Effects)
    W.value(E);
  W.endArray();
  W.key("mismatches").value(R.Mismatches);
  W.endObject();
  return W.take() + "\n";
}

std::string headerLine(uint64_t Fingerprint, uint64_t Programs) {
  JsonWriter W;
  W.beginObject();
  W.key("bec_fuzz_checkpoint").value(uint64_t(1));
  W.key("fingerprint").value(hex16(Fingerprint));
  W.key("programs").value(Programs);
  W.endObject();
  return W.take() + "\n";
}

/// Loads a fuzz checkpoint. Missing file: OK, zero records. Existing file
/// whose header disagrees with this campaign: an error, never a silent
/// partial reuse. Torn or malformed lines (what a kill leaves behind) are
/// skipped.
bool loadFuzzCheckpoint(const std::string &Path, uint64_t Fingerprint,
                        const std::vector<uint64_t> &Seeds,
                        std::map<uint64_t, ProgramRecord> &Records,
                        bool &HadHeader, std::string &Err) {
  HadHeader = false;
  std::ifstream In(Path);
  if (!In.is_open())
    return true;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> V = parseJson(Line);
    if (!V || !V->isObject())
      continue; // torn trailing line
    if (V->member("bec_fuzz_checkpoint")) {
      const std::string *FP = V->memberString("fingerprint");
      std::optional<uint64_t> Programs = V->memberU64("programs");
      if (!FP || *FP != hex16(Fingerprint) || !Programs ||
          *Programs != Seeds.size()) {
        Err = "checkpoint '" + Path + "' belongs to a different fuzz "
              "campaign (fingerprint or corpus size mismatch)";
        return false;
      }
      HadHeader = true;
      continue;
    }
    if (!HadHeader) {
      Err = "checkpoint '" + Path + "' has no fuzz header";
      return false;
    }
    std::optional<uint64_t> Index = V->memberU64("program");
    const std::string *Seed = V->memberString("seed");
    std::optional<uint64_t> Ex = V->memberU64("ex_runs");
    std::optional<uint64_t> Bit = V->memberU64("bit_runs");
    std::optional<uint64_t> Mismatches = V->memberU64("mismatches");
    const JsonValue *Effects = V->member("effects");
    if (!Index || *Index >= Seeds.size() || !Seed ||
        *Seed != hex16(Seeds[*Index]) || !Ex || !Bit || !Mismatches ||
        !Effects || !Effects->isArray() ||
        Effects->asArray()->size() != NumFaultEffects)
      continue; // malformed record
    ProgramRecord R;
    R.ExRuns = *Ex;
    R.BitRuns = *Bit;
    R.Mismatches = *Mismatches;
    bool Good = true;
    for (unsigned E = 0; E < NumFaultEffects; ++E) {
      std::optional<uint64_t> C = (*Effects->asArray())[E].asU64();
      if (!C) {
        Good = false;
        break;
      }
      R.Effects[E] = *C;
    }
    if (Good)
      Records[*Index] = R; // duplicates: last wins
  }
  return true;
}

} // namespace

FuzzResult bec::fuzz::runFuzz(const FuzzOptions &O) {
  auto Start = std::chrono::steady_clock::now();
  FuzzResult Result;

  CorpusSelection Sel = selectCorpus(O);
  Result.Programs = Sel.Seeds.size();
  Result.SkippedByBudget = Sel.Skipped;
  Result.OpcodeCount = Sel.OpcodeCount;
  Result.IdiomCount = Sel.IdiomCount;

  uint64_t Fingerprint = optionsFingerprint(O);

  // Resume: trust clean records; mismatching records re-run so their
  // details and reproducers are regenerated.
  std::map<uint64_t, ProgramRecord> Trusted;
  bool HadHeader = false;
  if (!O.CheckpointPath.empty() && O.Resume) {
    std::map<uint64_t, ProgramRecord> Records;
    if (!loadFuzzCheckpoint(O.CheckpointPath, Fingerprint, Sel.Seeds, Records,
                            HadHeader, Result.Error))
      return Result;
    for (auto &[Index, R] : Records)
      if (R.Mismatches == 0)
        Trusted.emplace(Index, R);
  }

  if (!O.BankDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(O.BankDir, EC);
    if (EC) {
      Result.Error = "cannot create bank directory '" + O.BankDir +
                     "': " + EC.message();
      return Result;
    }
  }

  std::ofstream Checkpoint;
  if (!O.CheckpointPath.empty()) {
    bool Append = O.Resume && HadHeader;
    Checkpoint.open(O.CheckpointPath, Append ? std::ios::app
                                             : std::ios::trunc);
    if (!Checkpoint.is_open()) {
      Result.Error = "cannot open checkpoint '" + O.CheckpointPath + "'";
      return Result;
    }
    if (!Append) {
      Checkpoint << headerLine(Fingerprint, Sel.Seeds.size());
      Checkpoint.flush();
    }
  }

  for (const auto &[Index, R] : Trusted) {
    (void)Index;
    ++Result.Resumed;
    Result.ExhaustiveRuns += R.ExRuns;
    Result.PrunedRuns += R.BitRuns;
    for (unsigned E = 0; E < NumFaultEffects; ++E)
      Result.PrunedEffects[E] += R.Effects[E];
  }

  std::vector<uint64_t> ToRun;
  for (uint64_t I = 0; I < Sel.Seeds.size(); ++I)
    if (!Trusted.count(I))
      ToRun.push_back(I);
  if (O.StopAfterPrograms && O.StopAfterPrograms < ToRun.size()) {
    ToRun.resize(O.StopAfterPrograms);
    Result.Interrupted = true;
  }

  std::mutex Mutex; // guards Result, Checkpoint, progress
  uint64_t Done = 0;
  ThreadPool Pool(O.Threads);
  for (uint64_t Index : ToRun)
    Pool.submit([&, Index] {
      uint64_t Seed = Sel.Seeds[Index];
      GeneratedProgram G = generateProgram(Seed, O.Gen);
      ProgramRecord R;
      std::optional<FuzzMismatch> Bad;
      if (!G.Error.empty()) {
        R.Mismatches = 1;
        Bad = FuzzMismatch{Index,  Seed,  "generator", G.Error,
                           1,      G.Asm, G.Asm,       ""};
      } else {
        OracleReport Report = runOracles(G.Prog, O.Oracle);
        R.ExRuns = Report.ExhaustiveRuns;
        R.BitRuns = Report.PrunedRuns;
        R.Effects = Report.PrunedEffects;
        R.Mismatches = Report.Mismatches.size();
        if (!Report.ok()) {
          Bad = FuzzMismatch{Index,
                             Seed,
                             Report.Mismatches[0].Oracle,
                             Report.Mismatches[0].Detail,
                             Report.Mismatches.size(),
                             G.Asm,
                             G.Asm,
                             ""};
          if (O.Minimize) {
            MinimizeOptions MO;
            MO.MaxTests = O.MinimizeMaxTests;
            MinimizeResult Min = minimizeProgram(
                G.Asm, G.Name,
                [&](const Program &P) { return !runOracles(P, O.Oracle).ok(); },
                MO);
            Bad->MinimizedAsm = Min.Asm;
          }
          if (!O.BankDir.empty()) {
            std::string Path =
                O.BankDir + "/repro_" + hex16(Seed) + ".s";
            std::ofstream Out(Path, std::ios::trunc);
            Out << "# bec fuzz reproducer\n"
                << "# seed 0x" << hex16(Seed) << " (program " << Index
                << " of corpus seed " << O.Seed << ")\n"
                << "# oracle: " << Bad->Oracle << "\n"
                << "# detail: " << Bad->Detail << "\n"
                << Bad->MinimizedAsm;
            if (Out.good())
              Bad->BankedPath = Path;
          }
        }
      }
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Result.Executed;
      Result.ExhaustiveRuns += R.ExRuns;
      Result.PrunedRuns += R.BitRuns;
      for (unsigned E = 0; E < NumFaultEffects; ++E)
        Result.PrunedEffects[E] += R.Effects[E];
      if (Bad)
        Result.Mismatches.push_back(std::move(*Bad));
      if (Checkpoint.is_open()) {
        Checkpoint << recordLine(Index, Seed, R);
        Checkpoint.flush();
      }
      ++Done;
      if (O.OnProgress)
        O.OnProgress({Done, ToRun.size(),
                      static_cast<uint64_t>(Result.Mismatches.size())});
    });
  Pool.wait();

  std::sort(Result.Mismatches.begin(), Result.Mismatches.end(),
            [](const FuzzMismatch &A, const FuzzMismatch &B) {
              return A.Index < B.Index;
            });
  Result.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

std::string bec::fuzz::emitCorpus(const FuzzOptions &O,
                                  const std::string &Dir) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "cannot create corpus directory '" + Dir + "': " + EC.message();
  CorpusSelection Sel = selectCorpus(O);
  for (uint64_t Seed : Sel.Seeds) {
    GeneratedProgram G = generateProgram(Seed, O.Gen);
    if (!G.Error.empty())
      return "seed " + hex16(Seed) + " does not generate: " + G.Error;
    std::string Path = Dir + "/seed_" + hex16(Seed) + ".s";
    std::ofstream Out(Path, std::ios::trunc);
    Out << G.Asm;
    if (!Out.good())
      return "cannot write '" + Path + "'";
  }
  return {};
}
