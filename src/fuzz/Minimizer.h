//===- fuzz/Minimizer.h - Delta-debugging reproducer minimizer ------------===//
///
/// \file
/// Classic ddmin over assembly *lines*: given a program whose oracles
/// disagree, shrink it to a 1-minimal reproducer — removing any single
/// remaining line either breaks assembly/verification or makes the
/// mismatch disappear. Candidates are validated through the real
/// AsmParser, so the minimizer can only ever hand back a verifier-legal
/// program, and the predicate decides "still failing" (typically by
/// re-running the oracles).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_FUZZ_MINIMIZER_H
#define BEC_FUZZ_MINIMIZER_H

#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <string>

namespace bec {
namespace fuzz {

/// Returns true when the candidate still exhibits the failure being
/// minimized. Candidates are always verifier-legal parsed programs.
using FailurePredicate = std::function<bool(const Program &)>;

struct MinimizeOptions {
  /// Cap on predicate evaluations (parse failures do not count). The
  /// ddmin pass stops early once exhausted; the result is still legal
  /// and still failing, just possibly not 1-minimal.
  uint64_t MaxTests = 4096;
};

struct MinimizeResult {
  /// The minimized assembly (always parses, verifies, and satisfies the
  /// predicate — in the worst case it is the input itself).
  std::string Asm;
  /// Line counts before/after, predicate evaluations spent, and whether
  /// the pass ran to 1-minimality within MaxTests.
  uint64_t LinesBefore = 0;
  uint64_t LinesAfter = 0;
  uint64_t Tests = 0;
  bool OneMinimal = false;
};

/// Minimizes \p Asm (which must parse, verify, and satisfy \p Fails)
/// under \p Fails. See the file comment for the algorithm.
MinimizeResult minimizeProgram(const std::string &Asm, std::string_view Name,
                               const FailurePredicate &Fails,
                               const MinimizeOptions &O = {});

} // namespace fuzz
} // namespace bec

#endif // BEC_FUZZ_MINIMIZER_H
