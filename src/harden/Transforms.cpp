//===- harden/Transforms.cpp - Protection transforms over the IR ----------===//

#include "harden/Transforms.h"

#include "sched/ListScheduler.h"
#include "support/Debug.h"

#include <algorithm>

using namespace bec;

bool HardenedProgram::isHardeningInstr(uint32_t P) const {
  if (DetectorIdx >= 0 && P >= static_cast<uint32_t>(DetectorIdx))
    return true;
  for (const ProtectedSite &S : Sites)
    if (S.Kind == ProtectKind::Duplicate &&
        (P == S.DupIdx || P == S.DefIdx || P == S.CheckIdx))
      return true;
  // Register-duplication machinery is index-free: shadow recomputes write
  // a shadow register, checks read one.
  uint32_t Shadows = shadowRegMask();
  if (Shadows != 0) {
    const Instruction &I = Prog.instr(P);
    if (I.writesReg() && ((Shadows >> I.Rd) & 1))
      return true;
    Reg Reads[2];
    unsigned N = I.readRegs(Reads);
    for (unsigned R = 0; R < N; ++R)
      if ((Shadows >> Reads[R]) & 1)
        return true;
  }
  return false;
}

uint32_t HardenedProgram::origRegMask() const {
  uint32_t Mask = 0;
  for (const ProtectedSite &S : Sites)
    if (S.Kind != ProtectKind::Narrow)
      Mask |= uint32_t(1) << S.Orig;
  return Mask;
}

uint32_t HardenedProgram::shadowRegMask() const {
  uint32_t Mask = 0;
  for (const ProtectedSite &S : Sites)
    if (S.Kind != ProtectKind::Narrow)
      Mask |= uint32_t(1) << S.Shadow;
  return Mask;
}

std::vector<Reg> bec::freeRegisters(const Program &Prog) {
  bool Accessed[NumRegs] = {};
  for (const Instruction &I : Prog.Instrs) {
    if (I.writesReg())
      Accessed[I.Rd] = true;
    Reg Reads[2];
    unsigned N = I.readRegs(Reads);
    for (unsigned R = 0; R < N; ++R)
      Accessed[Reads[R]] = true;
  }
  std::vector<Reg> Free;
  for (unsigned R = 1; R < NumRegs; ++R)
    if (!Accessed[R])
      Free.push_back(static_cast<Reg>(R));
  return Free;
}

namespace {

/// True for opcodes a shadow recompute may safely re-execute: pure
/// register computations and loads (the recompute sits immediately before
/// the original, so memory cannot have changed in between).
bool isDuplicable(Opcode Op) {
  switch (opcodeFormat(Op)) {
  case OpFormat::RegImm:
  case OpFormat::RegReg:
  case OpFormat::RegRegReg:
  case OpFormat::RegRegImm:
  case OpFormat::Load:
    return true;
  default:
    return false;
  }
}

/// Finds where a check protecting \p Rd defined at \p Def must go: before
/// the first subsequent writer of Rd in the block (the kill ends the
/// window; a check after it would compare the *new* value against the
/// shadow), or before the block's last instruction. Returns 0 if no
/// position exists (the def is the block's last instruction).
uint32_t checkPositionFor(const Program &Prog, const BasicBlock &B,
                          uint32_t Def, Reg Rd) {
  if (Def >= B.Last)
    return 0;
  for (uint32_t K = Def + 1; K <= B.Last; ++K) {
    const Instruction &I = Prog.instr(K);
    if (I.writesReg() && I.Rd == Rd)
      return K;
  }
  return B.Last;
}

/// First instruction after \p Def in \p B that reads \p Rd, or 0 if the
/// value is killed or unread within the block.
uint32_t firstReaderInBlock(const Program &Prog, const BasicBlock &B,
                            uint32_t Def, Reg Rd) {
  for (uint32_t K = Def + 1; K <= B.Last; ++K) {
    const Instruction &I = Prog.instr(K);
    if (I.reads(Rd))
      return K;
    if (I.writesReg() && I.Rd == Rd)
      return 0; // Killed before any read: the segment is dead.
  }
  return 0;
}

/// The shared detector block: a deliberately misaligned load forces a
/// deterministic trap, and the trailing halt satisfies the verifier's
/// no-fallthrough rule. Register-only narrow-width programs cannot use
/// memory instructions and fall back to a bare halt.
std::vector<Instruction> detectorInstrs(unsigned Width) {
  std::vector<Instruction> Detector;
  if (Width == 32) {
    Instruction Probe;
    Probe.Op = Opcode::LW;
    Probe.Rd = RegZero;
    Probe.Rs1 = RegZero;
    Probe.Imm = 1;
    Detector.push_back(Probe);
  }
  Instruction Halt;
  Halt.Op = Opcode::HALT;
  Detector.push_back(Halt);
  return Detector;
}

/// Shifts every site index and the detector index for an insertion of
/// \p N instructions before index \p At.
void shiftForInsertion(HardenedProgram &HP, uint32_t At, uint32_t N) {
  auto Shift = [&](uint32_t &Idx) {
    if (Idx >= At)
      Idx += N;
  };
  for (ProtectedSite &S : HP.Sites) {
    Shift(S.DupIdx);
    Shift(S.DefIdx);
    Shift(S.CheckIdx);
    Shift(S.MovedFrom);
    Shift(S.MovedTo);
  }
  if (HP.DetectorIdx >= 0 && static_cast<uint32_t>(HP.DetectorIdx) >= At)
    HP.DetectorIdx += static_cast<int32_t>(N);
}

} // namespace

std::vector<DupCandidate>
bec::findDupCandidates(const HardenedProgram &HP,
                       const std::vector<uint64_t> &DefScore) {
  const Program &Prog = HP.Prog;
  if (freeRegisters(Prog).empty())
    return {};
  std::vector<DupCandidate> Out;
  uint32_t Protected = HP.origRegMask();
  for (uint32_t P = 0; P < Prog.size(); ++P) {
    if (HP.isHardeningInstr(P) || DefScore[P] == 0)
      continue;
    const Instruction &I = Prog.instr(P);
    if (!I.writesReg() || !isDuplicable(I.Op))
      continue;
    // Registers protected at register granularity are already covered.
    if ((Protected >> I.Rd) & 1)
      continue;
    const BasicBlock &B = Prog.blocks()[Prog.blockOf(P)];
    uint32_t CheckPos = checkPositionFor(Prog, B, P, I.Rd);
    if (CheckPos == 0)
      continue;
    Out.push_back({P, CheckPos, DefScore[P]});
  }
  return Out;
}

std::vector<SinkCandidate>
bec::findSinkCandidates(const HardenedProgram &HP,
                        const std::vector<uint64_t> &DefScore) {
  const Program &Prog = HP.Prog;
  uint32_t Protected = HP.origRegMask();
  std::vector<SinkCandidate> Out;
  for (const BasicBlock &B : Prog.blocks()) {
    BlockDAG DAG = buildBlockDAG(Prog, B);
    for (uint32_t P = B.First + 1; P <= B.Last; ++P) {
      if (HP.isHardeningInstr(P) || DefScore[P] == 0)
        continue;
      const Instruction &I = Prog.instr(P);
      if (!I.writesReg())
        continue;
      // Defs of a protected register must keep their shadow recompute
      // adjacent; never move them.
      if ((Protected >> I.Rd) & 1)
        continue;
      uint32_t To = firstReaderInBlock(Prog, B, P, I.Rd);
      if (To == 0 || To <= P + 1)
        continue; // Unread, dead, or already adjacent to its reader.
      // Moving P to To - 1 is legal iff no dependence forces P before an
      // instruction strictly inside (P, To). Direct DAG successors are
      // enough: transitive constraints pass through a direct edge into
      // the region.
      bool Blocked = false;
      for (uint32_t S : DAG.Succs[P - B.First])
        if (B.First + S < To) {
          Blocked = true;
          break;
        }
      if (!Blocked)
        Out.push_back({P, To, DefScore[P]});
    }
  }
  return Out;
}

void bec::applyDuplication(HardenedProgram &HP, const DupCandidate &C) {
  Program &Prog = HP.Prog;
  // By value: the insertions below reallocate the instruction vector.
  Instruction Def = Prog.instr(C.Def);
  assert(Def.writesReg() && isDuplicable(Def.Op) && "bad duplication site");

  std::vector<Reg> Free = freeRegisters(Prog);
  assert(!Free.empty() && "no shadow register available");
  Reg Shadow = Free.front();
  Reg Rd = Def.Rd;

  // Shared detector block, appended once at the very end (the verified
  // program's last instruction is a terminator, so nothing falls into
  // it).
  if (HP.DetectorIdx < 0) {
    HP.DetectorIdx = static_cast<int32_t>(Prog.size());
    Prog.insertInstructions(Prog.size(), detectorInstrs(Prog.Width));
  }

  // Shadow recompute immediately before the def: identical sources, so
  // the shadow holds the same value on every path (branches to the def
  // are remapped onto the recompute by insertInstructions).
  Instruction Dup = Def;
  Dup.Rd = Shadow;
  shiftForInsertion(HP, C.Def, 1);
  Prog.insertInstructions(C.Def, {&Dup, 1});

  // Compare-and-branch to the detector, before the first kill of Rd (or
  // the block's last instruction). Any in-window SEU in Rd or the shadow
  // survives untouched until here — registers are only overwritten at
  // kills — so the compare observes it and diverts to the detector.
  uint32_t CheckAt = C.CheckPos + 1; // Shifted by the recompute above.
  shiftForInsertion(HP, CheckAt, 1);
  Instruction Check;
  Check.Op = Opcode::BNE;
  Check.Rs1 = Rd;
  Check.Rs2 = Shadow;
  Check.Target = HP.DetectorIdx; // Already shifted to its final index.
  Prog.insertInstructions(CheckAt, {&Check, 1});

  ProtectedSite Site;
  Site.Kind = ProtectKind::Duplicate;
  Site.Orig = Rd;
  Site.Shadow = Shadow;
  Site.DupIdx = C.Def;
  Site.DefIdx = C.Def + 1;
  Site.CheckIdx = CheckAt;
  HP.Sites.push_back(Site);

  Prog.buildCFG();
}

std::vector<RegDupCandidate>
bec::findRegDupCandidates(const HardenedProgram &HP,
                          const std::array<uint64_t, NumRegs> &RegScore) {
  const Program &Prog = HP.Prog;
  if (freeRegisters(Prog).empty())
    return {};
  uint32_t Taken = HP.origRegMask() | HP.shadowRegMask();
  // Only registers the program actually defines can be shadowed.
  uint32_t Defined = 0;
  for (const Instruction &I : Prog.Instrs)
    if (I.writesReg())
      Defined |= uint32_t(1) << I.Rd;
  std::vector<RegDupCandidate> Out;
  for (Reg R = 1; R < NumRegs; ++R)
    if (RegScore[R] != 0 && !((Taken >> R) & 1) && ((Defined >> R) & 1))
      Out.push_back({R, RegScore[R]});
  return Out;
}

void bec::applyRegisterDuplication(HardenedProgram &HP,
                                   const RegDupCandidate &C) {
  Program &Prog = HP.Prog;
  Reg R = C.R;
  std::vector<Reg> Free = freeRegisters(Prog);
  assert(!Free.empty() && "no shadow register available");
  Reg Shadow = Free.front();
  uint32_t Shadows = HP.shadowRegMask();

  // Sentinel for "branch to the detector" while its final index is still
  // unknown; distinct from NoTarget.
  constexpr int32_t DetectorTarget = -2;

  uint32_t N = Prog.size();
  std::vector<Instruction> New;
  New.reserve(N + 8);
  // Landing[P]: where control transfers to old P must go (the first
  // instruction emitted for P, so inserted checks/recomputes run first).
  // Placed[P]: where old P itself landed.
  std::vector<uint32_t> Landing(N), Placed(N);

  for (uint32_t P = 0; P < N; ++P) {
    Instruction I = Prog.instr(P);
    Landing[P] = static_cast<uint32_t>(New.size());
    bool WritesR = I.writesReg() && I.Rd == R;
    bool ShadowWriter = I.writesReg() && ((Shadows >> I.Rd) & 1);
    // A check guards every consumption of R outside its own def chain.
    // Shadow recomputes of other protected registers re-read R by
    // construction; their adjacent original def gets the check.
    if (I.reads(R) && !WritesR && !ShadowWriter) {
      Instruction Check;
      Check.Op = Opcode::BNE;
      Check.Rs1 = R;
      Check.Rs2 = Shadow;
      Check.Target = DetectorTarget;
      New.push_back(Check);
    }
    if (WritesR) {
      // The shadow recompute reads the shadow where the def reads R, so
      // the shadow chain never consumes a corrupted R: it carries the
      // exact fault-free value, and R == shadow iff any fault in R was
      // masked.
      Instruction Dup = I;
      Dup.Rd = Shadow;
      switch (opcodeFormat(I.Op)) {
      case OpFormat::RegReg:
      case OpFormat::RegRegImm:
      case OpFormat::Load:
        if (Dup.Rs1 == R)
          Dup.Rs1 = Shadow;
        break;
      case OpFormat::RegRegReg:
        if (Dup.Rs1 == R)
          Dup.Rs1 = Shadow;
        if (Dup.Rs2 == R)
          Dup.Rs2 = Shadow;
        break;
      default:
        break;
      }
      New.push_back(Dup);
    }
    Placed[P] = static_cast<uint32_t>(New.size());
    New.push_back(I);
  }

  int32_t NewDetector;
  if (HP.DetectorIdx >= 0) {
    NewDetector = static_cast<int32_t>(Placed[HP.DetectorIdx]);
  } else {
    NewDetector = static_cast<int32_t>(New.size());
    for (const Instruction &I : detectorInstrs(Prog.Width))
      New.push_back(I);
  }

  for (Instruction &I : New) {
    if (I.Target == DetectorTarget)
      I.Target = NewDetector;
    else if (I.Target != NoTarget)
      I.Target = static_cast<int32_t>(Landing[static_cast<uint32_t>(I.Target)]);
  }
  // Original instructions were emitted with their old targets; the loop
  // above remapped them in place, which is correct because old targets
  // are always < N and sentinel/NoTarget values are negative.
  Prog.Entry = Landing[Prog.Entry];
  Prog.Instrs = std::move(New);

  for (ProtectedSite &S : HP.Sites) {
    S.DupIdx = Placed[S.DupIdx];
    S.DefIdx = Placed[S.DefIdx];
    S.CheckIdx = Placed[S.CheckIdx];
    S.MovedFrom = Placed[S.MovedFrom];
    S.MovedTo = Placed[S.MovedTo];
  }
  HP.DetectorIdx = NewDetector;

  ProtectedSite Site;
  Site.Kind = ProtectKind::DuplicateReg;
  Site.Orig = R;
  Site.Shadow = Shadow;
  HP.Sites.push_back(Site);

  Prog.buildCFG();
}

void bec::applySinking(HardenedProgram &HP, const SinkCandidate &C) {
  Program &Prog = HP.Prog;
  assert(C.From + 1 < C.To && C.To <= Prog.size() && "bad sinking range");
  // Rotate [From, To): the def lands at To - 1, the instructions it
  // crossed shift up by one. All of them are block-interior (non-leader)
  // positions, so no branch target or entry remap is needed.
  std::rotate(Prog.Instrs.begin() + C.From, Prog.Instrs.begin() + C.From + 1,
              Prog.Instrs.begin() + C.To);
  auto Remap = [&](uint32_t &Idx) {
    if (Idx == C.From)
      Idx = C.To - 1;
    else if (Idx > C.From && Idx < C.To)
      Idx -= 1;
  };
  for (ProtectedSite &S : HP.Sites) {
    Remap(S.DupIdx);
    Remap(S.DefIdx);
    Remap(S.CheckIdx);
    Remap(S.MovedFrom);
    Remap(S.MovedTo);
  }

  ProtectedSite Site;
  Site.Kind = ProtectKind::Narrow;
  Site.Orig = Prog.instr(C.To - 1).Rd;
  Site.MovedFrom = C.From;
  Site.MovedTo = C.To - 1;
  HP.Sites.push_back(Site);

  Prog.buildCFG();
}
