//===- harden/Harden.h - BEC-guided selective hardening under a budget ----===//
///
/// \file
/// The selective-hardening subsystem's entry point. BEC's bit-level
/// vulnerability data identifies *where* a program is exposed to soft
/// errors; this pass spends a bounded dynamic-instruction budget there:
///
///   1. rank def sites by the live fault sites they govern
///      (harden/VulnerabilityRank.h);
///   2. greedily apply protection transforms (harden/Transforms.h) in
///      rank order, re-measuring after each application and keeping a
///      transform only if the program still verifies, the observable
///      behaviour is bit-identical, the dynamic-instruction overhead
///      stays within the budget, and the *residual* vulnerability
///      strictly drops;
///   3. report the reached cost/vulnerability Pareto point.
///
/// Residual vulnerability is the live-fault-site metric of core/Metrics.h
/// minus the sites covered by a duplication window: a single-event upset
/// in a protected register between its def and its check is caught by the
/// compare (the corrupted register survives verbatim until the check — or
/// traps even earlier on a corrupted address) and ends in a detector trap
/// instead of silent data corruption. validateHardening() closes the loop
/// by actually injecting faults into protected windows and confirming
/// detection on the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_HARDEN_HARDEN_H
#define BEC_HARDEN_HARDEN_H

#include "core/BECAnalysis.h"
#include "harden/Transforms.h"
#include "sim/Trace.h"

#include <span>

namespace bec {

struct HardenOptions {
  /// Maximum extra dynamic instructions, in percent of the baseline
  /// golden run's cycle count.
  double BudgetPercent = 10.0;
  /// Safety cap on accepted protection sites.
  unsigned MaxSites = 64;
  /// Candidates measured per greedy round; the best
  /// vulnerability-drop-per-cycle wins the round.
  unsigned ProbesPerRound = 8;
  bool EnableDuplication = true;
  bool EnableNarrowing = true;
};

/// The Pareto point reached for one program.
struct HardenResult {
  HardenedProgram HP;
  uint64_t BaselineVuln = 0;
  uint64_t BaselineCycles = 0;
  /// Plain computeVulnerability of the hardened program (shadows and
  /// checks included, protection not credited).
  uint64_t HardenedRawVuln = 0;
  /// Protection-aware live fault sites of the hardened program; the
  /// quantity the selector minimizes.
  uint64_t ResidualVuln = 0;
  uint64_t HardenedCycles = 0;
  unsigned NumDuplicated = 0;
  unsigned NumNarrowed = 0;

  /// Extra dynamic instructions relative to the baseline, in percent.
  double costPercent() const {
    if (BaselineCycles == 0)
      return 0.0;
    return 100.0 *
           (static_cast<double>(HardenedCycles) -
            static_cast<double>(BaselineCycles)) /
           static_cast<double>(BaselineCycles);
  }
  /// Fraction of the baseline vulnerability removed.
  double reduction() const {
    if (BaselineVuln == 0)
      return 0.0;
    return 1.0 - static_cast<double>(ResidualVuln) /
                     static_cast<double>(BaselineVuln);
  }
};

/// Live fault sites of \p A's program over \p Executed, with the sites
/// inside \p HP's duplication windows credited as detected (see file
/// comment). With no protected sites this equals computeVulnerability.
uint64_t computeResidualVulnerability(const BECAnalysis &A,
                                      std::span<const uint32_t> Executed,
                                      const HardenedProgram &HP);

/// Hardens \p Prog (verified, CFG built, golden run must finish) under
/// \p Opts. The result's program always verifies and behaves identically.
///
/// This classic entry point runs on a private api/AnalysisSession; when
/// hardening several budgets or mixing with other queries, prefer the
/// session overload in api/Queries.h — identical results, shared cache.
HardenResult hardenProgram(const Program &Prog,
                           const HardenOptions &Opts = {});

/// Closed-loop validation of a hardening result against fault-injection
/// ground truth.
struct HardenValidation {
  bool VerifierClean = false;
  /// Hardened observable behaviour equals the baseline's (bit-identical
  /// out stream, return value and outcome).
  bool OutputsMatch = false;
  /// ResidualVuln strictly below BaselineVuln whenever any site was
  /// applied (a site is only ever accepted on a strict improvement);
  /// equality is required when the selector found nothing affordable.
  bool VulnerabilityReduced = false;
  /// Fault-injection probes into duplication windows: every probe must
  /// end detected (trap in the detector, or an earlier trap forced by
  /// the corrupted value).
  uint64_t DetectionProbes = 0;
  uint64_t DetectionsCaught = 0;

  bool ok() const {
    return VerifierClean && OutputsMatch && VulnerabilityReduced &&
           DetectionsCaught == DetectionProbes;
  }
};

/// Re-verifies, re-simulates and fault-injects the hardened program.
HardenValidation validateHardening(const HardenResult &R,
                                   const Program &Baseline);

/// The fault-injection probe stage shared by both validateHardening
/// flavours (cold, above, and the cached one in api/Queries.h): injects
/// into every protected window of \p R, judging each probe against
/// \p Golden — the hardened program's fault-free trace — and accumulates
/// DetectionProbes/DetectionsCaught into \p V.
void runDetectionProbes(const HardenResult &R, const Trace &Golden,
                        HardenValidation &V);

} // namespace bec

#endif // BEC_HARDEN_HARDEN_H
