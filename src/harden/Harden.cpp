//===- harden/Harden.cpp - BEC-guided selective hardening -----------------===//

#include "harden/Harden.h"

#include "core/Metrics.h"
#include "harden/VulnerabilityRank.h"
#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <array>
#include <set>
#include <string>

using namespace bec;

uint64_t bec::computeResidualVulnerability(const BECAnalysis &A,
                                           std::span<const uint32_t> Executed,
                                           const HardenedProgram &HP) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;

  // Per-instruction protection triggers. A def (or its shadow recompute)
  // arms protection of its register until the site's check executes; any
  // other write to an armed register disarms it (the protected value is
  // gone, and with it the window).
  std::vector<int32_t> SiteOfDef(Prog.size(), -1);
  std::vector<int32_t> SiteOfDup(Prog.size(), -1);
  // Register-granular sites: the register is covered everywhere except
  // between a check's execution and the next access of the register (a
  // flip in that gap is consumed unchecked). Shadows are always covered:
  // their corruption can only ever trip a check.
  std::array<int32_t, NumRegs> RegSiteOf;
  RegSiteOf.fill(-1);
  std::array<Reg, NumRegs> RegShadowOf{};
  uint32_t RegDupShadows = 0;
  std::vector<bool> Uncovered(HP.Sites.size(), false);
  for (size_t S = 0; S < HP.Sites.size(); ++S) {
    const ProtectedSite &Site = HP.Sites[S];
    if (Site.Kind == ProtectKind::Duplicate) {
      SiteOfDef[Site.DefIdx] = static_cast<int32_t>(S);
      SiteOfDup[Site.DupIdx] = static_cast<int32_t>(S);
    } else if (Site.Kind == ProtectKind::DuplicateReg) {
      RegSiteOf[Site.Orig] = static_cast<int32_t>(S);
      RegShadowOf[Site.Orig] = Site.Shadow;
      RegDupShadows |= uint32_t(1) << Site.Shadow;
    }
  }

  std::array<int32_t, NumRegs> Governor;
  Governor.fill(-1);
  std::array<unsigned, NumRegs> LiveBits{};
  /// Check index whose execution ends the register's window, or -1.
  std::array<int32_t, NumRegs> ArmedUntil;
  ArmedUntil.fill(-1);
  uint64_t Total = 0;

  for (size_t C = 0; C < Executed.size(); ++C) {
    uint32_t P = Executed[C];
    const Instruction &I = Prog.instr(P);

    // The check validated the value: faults from here on are unchecked.
    for (Reg V = 0; V < NumRegs; ++V)
      if (ArmedUntil[V] == static_cast<int32_t>(P))
        ArmedUntil[V] = -1;

    if (isHalt(I.Op)) {
      // Windows never span a halt (def and check share a basic block),
      // so the final residue is counted unconditionally, as in
      // computeVulnerability.
      Reg Reads[2];
      unsigned NumReads = I.readRegs(Reads);
      for (unsigned R = 0; R < NumReads; ++R) {
        int32_t Ap = Governor[Reads[R]];
        if (Ap >= 0)
          Total +=
              W - popCount(A.summary(static_cast<uint32_t>(Ap)).MaskedMask, W);
      }
      break;
    }

    if (I.writesReg() && ArmedUntil[I.Rd] >= 0)
      ArmedUntil[I.Rd] = -1; // Overwritten: old window is void.
    if (SiteOfDup[P] >= 0) {
      const ProtectedSite &Site = HP.Sites[SiteOfDup[P]];
      ArmedUntil[Site.Shadow] = static_cast<int32_t>(Site.CheckIdx);
    }
    if (SiteOfDef[P] >= 0) {
      const ProtectedSite &Site = HP.Sites[SiteOfDef[P]];
      ArmedUntil[Site.Orig] = static_cast<int32_t>(Site.CheckIdx);
    }

    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = FS.point(Ap).R;
      Governor[V] = static_cast<int32_t>(Ap);
      LiveBits[V] = W - popCount(A.summary(Ap).MaskedMask, W);
    }
    for (Reg V = 0; V < NumRegs; ++V) {
      if (Governor[V] < 0 || ArmedUntil[V] >= 0)
        continue;
      if ((RegDupShadows >> V) & 1)
        continue;
      if (RegSiteOf[V] >= 0 && !Uncovered[RegSiteOf[V]])
        continue;
      Total += LiveBits[V];
    }

    // Advance the register-site state machines *after* counting: a flip
    // ahead of the check itself is still detected, a flip ahead of the
    // consuming access is not.
    for (Reg V = 0; V < NumRegs; ++V) {
      int32_t S = RegSiteOf[V];
      if (S < 0)
        continue;
      bool IsCheck = I.Op == Opcode::BNE && I.Rs1 == V &&
                     I.Rs2 == RegShadowOf[V] &&
                     I.Target == HP.DetectorIdx;
      if (IsCheck)
        Uncovered[S] = true;
      else if (I.reads(V) || (I.writesReg() && I.Rd == V))
        Uncovered[S] = false;
    }
  }
  return Total;
}

namespace {

/// One measured trial of the greedy loop.
struct Measurement {
  bool Valid = false;
  uint64_t ResidualVuln = 0;
  uint64_t Cycles = 0;
};

Measurement measure(const HardenedProgram &HP, uint64_t ObservableHash,
                    uint64_t BaselineCycles, double BudgetPercent) {
  Measurement M;
  if (!verifyProgram(HP.Prog).empty())
    return M;
  Trace G = simulate(HP.Prog);
  if (G.End != Outcome::Finished || G.ObservableHash != ObservableHash)
    return M;
  double Cost = 100.0 *
                (static_cast<double>(G.Cycles) -
                 static_cast<double>(BaselineCycles)) /
                static_cast<double>(BaselineCycles);
  if (Cost > BudgetPercent)
    return M;
  BECAnalysis A = BECAnalysis::run(HP.Prog);
  M.Valid = true;
  M.ResidualVuln = computeResidualVulnerability(A, G.Executed, HP);
  M.Cycles = G.Cycles;
  return M;
}

/// Stable identity of a candidate across index shifts, used to memoize
/// rejections: the def's rendered text, its ordinal among identical
/// texts (so two equal defs at different sites never share an entry),
/// and the window/target distance.
std::string signatureOf(const Program &Prog, const char *Kind, uint32_t Def,
                        uint32_t End) {
  std::string Text = Prog.instr(Def).toString();
  unsigned Ordinal = 0;
  for (uint32_t P = 0; P < Def; ++P)
    if (Prog.instr(P).toString() == Text)
      ++Ordinal;
  return std::string(Kind) + ":" + Text + "#" + std::to_string(Ordinal) +
         ":" + std::to_string(End - Def);
}

} // namespace

HardenResult bec::hardenProgram(const Program &Prog,
                                const HardenOptions &Opts) {
  HardenResult R;
  R.HP.Prog = Prog;

  Trace Golden = simulate(Prog);
  assert(Golden.End == Outcome::Finished && "golden run must finish");
  {
    BECAnalysis A = BECAnalysis::run(Prog);
    R.BaselineVuln = computeVulnerability(A, Golden.Executed);
  }
  R.BaselineCycles = Golden.Cycles;
  R.ResidualVuln = R.BaselineVuln;
  R.HardenedCycles = R.BaselineCycles;

  std::set<std::string> Rejected;
  while (R.HP.Sites.size() < Opts.MaxSites) {
    BECAnalysis A = BECAnalysis::run(R.HP.Prog);
    Trace G = simulate(R.HP.Prog);
    VulnerabilityRank Rank = VulnerabilityRank::run(A, G.Executed);
    std::vector<uint64_t> DefScore(R.HP.Prog.size());
    for (uint32_t P = 0; P < R.HP.Prog.size(); ++P)
      DefScore[P] = Rank.defScore(P);
    std::array<uint64_t, NumRegs> RegScore;
    for (Reg V = 0; V < NumRegs; ++V)
      RegScore[V] = Rank.regScore(V);

    // Unified, rank-ordered candidate list over all transforms.
    enum class Kind { Dup, RegDup, Sink };
    struct Candidate {
      uint64_t Score;
      Kind K;
      DupCandidate Dup;
      RegDupCandidate Reg;
      SinkCandidate Sink;
    };
    std::vector<Candidate> Cands;
    if (Opts.EnableDuplication) {
      for (const RegDupCandidate &C : findRegDupCandidates(R.HP, RegScore))
        Cands.push_back({C.Score, Kind::RegDup, {}, C, {}});
      for (const DupCandidate &C : findDupCandidates(R.HP, DefScore))
        Cands.push_back({C.Score, Kind::Dup, C, {}, {}});
    }
    if (Opts.EnableNarrowing)
      for (const SinkCandidate &C : findSinkCandidates(R.HP, DefScore))
        Cands.push_back({C.Score, Kind::Sink, {}, {}, C});
    std::stable_sort(Cands.begin(), Cands.end(),
                     [](const Candidate &L, const Candidate &Rhs) {
                       return L.Score > Rhs.Score;
                     });

    // Measure the top candidates and take the round's best vulnerability
    // drop per added cycle (free transforms rank naturally first).
    // Candidates that fail to improve are memoized by a shift-stable
    // signature and never measured again; improving runners-up stay in
    // play for later rounds.
    HardenedProgram Best;
    Measurement BestM;
    double BestRatio = 0.0;
    bool HaveBest = false;
    unsigned Probed = 0;
    for (const Candidate &C : Cands) {
      if (Probed >= Opts.ProbesPerRound)
        break;
      std::string Sig;
      switch (C.K) {
      case Kind::Dup:
        Sig = signatureOf(R.HP.Prog, "dup", C.Dup.Def, C.Dup.CheckPos);
        break;
      case Kind::RegDup:
        Sig = "regdup:" + std::string(regName(C.Reg.R));
        break;
      case Kind::Sink:
        Sig = signatureOf(R.HP.Prog, "sink", C.Sink.From, C.Sink.To);
        break;
      }
      if (Rejected.count(Sig))
        continue;
      HardenedProgram Trial = R.HP;
      switch (C.K) {
      case Kind::Dup:
        applyDuplication(Trial, C.Dup);
        break;
      case Kind::RegDup:
        applyRegisterDuplication(Trial, C.Reg);
        break;
      case Kind::Sink:
        applySinking(Trial, C.Sink);
        break;
      }
      ++Probed;
      Measurement M = measure(Trial, Golden.ObservableHash, R.BaselineCycles,
                              Opts.BudgetPercent);
      if (!M.Valid || M.ResidualVuln >= R.ResidualVuln) {
        Rejected.insert(Sig);
        continue;
      }
      double Gain = static_cast<double>(R.ResidualVuln - M.ResidualVuln);
      double AddedCycles =
          M.Cycles > R.HardenedCycles
              ? static_cast<double>(M.Cycles - R.HardenedCycles)
              : 0.0;
      double Ratio = Gain / (AddedCycles + 1.0);
      if (!HaveBest || Ratio > BestRatio) {
        HaveBest = true;
        BestRatio = Ratio;
        Best = std::move(Trial);
        BestM = M;
      }
    }
    if (!HaveBest)
      break;
    R.HP = std::move(Best);
    R.ResidualVuln = BestM.ResidualVuln;
    R.HardenedCycles = BestM.Cycles;
  }

  for (const ProtectedSite &S : R.HP.Sites)
    if (S.Kind == ProtectKind::Narrow)
      ++R.NumNarrowed;
    else
      ++R.NumDuplicated;
  {
    BECAnalysis A = BECAnalysis::run(R.HP.Prog);
    Trace G = simulate(R.HP.Prog);
    R.HardenedRawVuln = computeVulnerability(A, G.Executed);
  }
  return R;
}

HardenValidation bec::validateHardening(const HardenResult &R,
                                        const Program &Baseline) {
  HardenValidation V;
  V.VerifierClean = verifyProgram(R.HP.Prog).empty();
  if (!V.VerifierClean)
    return V;

  Trace BaseGolden = simulate(Baseline);
  Trace Golden = simulate(R.HP.Prog);
  V.OutputsMatch = Golden.End == Outcome::Finished &&
                   Golden.ObservableHash == BaseGolden.ObservableHash;
  V.VulnerabilityReduced = R.HP.Sites.empty()
                               ? R.ResidualVuln == R.BaselineVuln
                               : R.ResidualVuln < R.BaselineVuln;

  // The fault-injection oracle: flip a bit of the protected register (and
  // of the shadow) right after the first dynamic execution of each
  // protected def; the run must end detected. Detection is a trap — the
  // detector's misaligned load, or earlier if the corrupted value itself
  // traps — or, for register-only programs whose detector is a bare halt,
  // reaching the detector block.
  auto Detected = [&](const Trace &T) {
    if (T.End == Outcome::Trap)
      return true;
    if (R.HP.DetectorIdx < 0)
      return false;
    uint32_t D = static_cast<uint32_t>(R.HP.DetectorIdx);
    return std::find(T.Executed.begin(), T.Executed.end(), D) !=
           T.Executed.end();
  };
  unsigned W = R.HP.Prog.Width;
  auto Probe = [&](const Injection &Inj, bool AllowMasked) {
    ++V.DetectionProbes;
    Trace T = simulateWithInjection(R.HP.Prog, Inj);
    // A masked outcome (identical architectural trace) is acceptable for
    // register-granular sites: the shadow chain may absorb the flip, in
    // which case the register provably returned to its fault-free value.
    if (Detected(T) || (AllowMasked && T.TraceHash == Golden.TraceHash))
      ++V.DetectionsCaught;
  };
  for (const ProtectedSite &S : R.HP.Sites) {
    if (S.Kind == ProtectKind::Duplicate) {
      // A flip inside the window survives verbatim until the check (the
      // window contains no write of the register), so detection must be
      // unconditional.
      auto It =
          std::find(Golden.Executed.begin(), Golden.Executed.end(), S.DefIdx);
      if (It == Golden.Executed.end())
        continue; // Def never executed: nothing to probe.
      uint64_t AfterCycle =
          static_cast<uint64_t>(It - Golden.Executed.begin()) + 1;
      Probe({AfterCycle, S.Orig, 0}, false);
      Probe({AfterCycle, S.Orig, W - 1}, false);
      Probe({AfterCycle, S.Shadow, W / 2}, false);
    } else if (S.Kind == ProtectKind::DuplicateReg) {
      // Flip right after every distinct def of the register first
      // executes; each flip must be caught by a downstream check or be
      // provably masked.
      std::vector<bool> Probed(R.HP.Prog.size(), false);
      for (size_t C = 0; C + 1 < Golden.Executed.size(); ++C) {
        uint32_t P = Golden.Executed[C];
        const Instruction &I = R.HP.Prog.instr(P);
        if (Probed[P] || !I.writesReg() || I.Rd != S.Orig)
          continue;
        Probed[P] = true;
        Probe({C + 1, S.Orig, 0}, true);
        Probe({C + 1, S.Orig, W - 1}, true);
        Probe({C + 1, S.Shadow, W / 2}, true);
      }
    }
  }
  return V;
}
