//===- harden/Harden.cpp - BEC-guided selective hardening -----------------===//

#include "harden/Harden.h"

#include "ir/Verifier.h"
#include "sim/Interpreter.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <array>

using namespace bec;

uint64_t bec::computeResidualVulnerability(const BECAnalysis &A,
                                           std::span<const uint32_t> Executed,
                                           const HardenedProgram &HP) {
  const Program &Prog = A.program();
  const FaultSpace &FS = A.space();
  unsigned W = Prog.Width;

  // Per-instruction protection triggers. A def (or its shadow recompute)
  // arms protection of its register until the site's check executes; any
  // other write to an armed register disarms it (the protected value is
  // gone, and with it the window).
  std::vector<int32_t> SiteOfDef(Prog.size(), -1);
  std::vector<int32_t> SiteOfDup(Prog.size(), -1);
  // Register-granular sites: the register is covered everywhere except
  // between a check's execution and the next access of the register (a
  // flip in that gap is consumed unchecked). Shadows are always covered:
  // their corruption can only ever trip a check.
  std::array<int32_t, NumRegs> RegSiteOf;
  RegSiteOf.fill(-1);
  std::array<Reg, NumRegs> RegShadowOf{};
  uint32_t RegDupShadows = 0;
  std::vector<bool> Uncovered(HP.Sites.size(), false);
  for (size_t S = 0; S < HP.Sites.size(); ++S) {
    const ProtectedSite &Site = HP.Sites[S];
    if (Site.Kind == ProtectKind::Duplicate) {
      SiteOfDef[Site.DefIdx] = static_cast<int32_t>(S);
      SiteOfDup[Site.DupIdx] = static_cast<int32_t>(S);
    } else if (Site.Kind == ProtectKind::DuplicateReg) {
      RegSiteOf[Site.Orig] = static_cast<int32_t>(S);
      RegShadowOf[Site.Orig] = Site.Shadow;
      RegDupShadows |= uint32_t(1) << Site.Shadow;
    }
  }

  std::array<int32_t, NumRegs> Governor;
  Governor.fill(-1);
  std::array<unsigned, NumRegs> LiveBits{};
  /// Check index whose execution ends the register's window, or -1.
  std::array<int32_t, NumRegs> ArmedUntil;
  ArmedUntil.fill(-1);
  uint64_t Total = 0;

  for (size_t C = 0; C < Executed.size(); ++C) {
    uint32_t P = Executed[C];
    const Instruction &I = Prog.instr(P);

    // The check validated the value: faults from here on are unchecked.
    for (Reg V = 0; V < NumRegs; ++V)
      if (ArmedUntil[V] == static_cast<int32_t>(P))
        ArmedUntil[V] = -1;

    if (isHalt(I.Op)) {
      // Windows never span a halt (def and check share a basic block),
      // so the final residue is counted unconditionally, as in
      // computeVulnerability.
      Reg Reads[2];
      unsigned NumReads = I.readRegs(Reads);
      for (unsigned R = 0; R < NumReads; ++R) {
        int32_t Ap = Governor[Reads[R]];
        if (Ap >= 0)
          Total +=
              W - popCount(A.summary(static_cast<uint32_t>(Ap)).MaskedMask, W);
      }
      break;
    }

    if (I.writesReg() && ArmedUntil[I.Rd] >= 0)
      ArmedUntil[I.Rd] = -1; // Overwritten: old window is void.
    if (SiteOfDup[P] >= 0) {
      const ProtectedSite &Site = HP.Sites[SiteOfDup[P]];
      ArmedUntil[Site.Shadow] = static_cast<int32_t>(Site.CheckIdx);
    }
    if (SiteOfDef[P] >= 0) {
      const ProtectedSite &Site = HP.Sites[SiteOfDef[P]];
      ArmedUntil[Site.Orig] = static_cast<int32_t>(Site.CheckIdx);
    }

    auto [ApBegin, ApEnd] = FS.pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = FS.point(Ap).R;
      Governor[V] = static_cast<int32_t>(Ap);
      LiveBits[V] = W - popCount(A.summary(Ap).MaskedMask, W);
    }
    for (Reg V = 0; V < NumRegs; ++V) {
      if (Governor[V] < 0 || ArmedUntil[V] >= 0)
        continue;
      if ((RegDupShadows >> V) & 1)
        continue;
      if (RegSiteOf[V] >= 0 && !Uncovered[RegSiteOf[V]])
        continue;
      Total += LiveBits[V];
    }

    // Advance the register-site state machines *after* counting: a flip
    // ahead of the check itself is still detected, a flip ahead of the
    // consuming access is not.
    for (Reg V = 0; V < NumRegs; ++V) {
      int32_t S = RegSiteOf[V];
      if (S < 0)
        continue;
      bool IsCheck = I.Op == Opcode::BNE && I.Rs1 == V &&
                     I.Rs2 == RegShadowOf[V] &&
                     I.Target == HP.DetectorIdx;
      if (IsCheck)
        Uncovered[S] = true;
      else if (I.reads(V) || (I.writesReg() && I.Rd == V))
        Uncovered[S] = false;
    }
  }
  return Total;
}

// The greedy measure-and-accept selector lives in api/HardenLoop.cpp: it
// runs on the AnalysisSession cache (hardenProgram(AnalysisSession&, ...))
// so trial measurements, round baselines, sweeps and validation share
// work; the classic hardenProgram(Program, ...) wrapper there keeps this
// header's historical entry point. This file retains the parts that are
// pure functions of their arguments: the residual-vulnerability metric
// above and the closed-loop validation below.

void bec::runDetectionProbes(const HardenResult &R, const Trace &Golden,
                             HardenValidation &V) {
  // The fault-injection oracle: flip a bit of the protected register (and
  // of the shadow) right after the first dynamic execution of each
  // protected def; the run must end detected. Detection is a trap — the
  // detector's misaligned load, or earlier if the corrupted value itself
  // traps — or, for register-only programs whose detector is a bare halt,
  // reaching the detector block.
  auto Detected = [&](const Trace &T) {
    if (T.End == Outcome::Trap)
      return true;
    if (R.HP.DetectorIdx < 0)
      return false;
    uint32_t D = static_cast<uint32_t>(R.HP.DetectorIdx);
    return std::find(T.Executed.begin(), T.Executed.end(), D) !=
           T.Executed.end();
  };
  unsigned W = R.HP.Prog.Width;
  auto Probe = [&](const Injection &Inj, bool AllowMasked) {
    ++V.DetectionProbes;
    Trace T = simulateWithInjection(R.HP.Prog, Inj);
    // A masked outcome (identical architectural trace) is acceptable for
    // register-granular sites: the shadow chain may absorb the flip, in
    // which case the register provably returned to its fault-free value.
    if (Detected(T) || (AllowMasked && T.TraceHash == Golden.TraceHash))
      ++V.DetectionsCaught;
  };
  for (const ProtectedSite &S : R.HP.Sites) {
    if (S.Kind == ProtectKind::Duplicate) {
      // A flip inside the window survives verbatim until the check (the
      // window contains no write of the register), so detection must be
      // unconditional.
      auto It =
          std::find(Golden.Executed.begin(), Golden.Executed.end(), S.DefIdx);
      if (It == Golden.Executed.end())
        continue; // Def never executed: nothing to probe.
      uint64_t AfterCycle =
          static_cast<uint64_t>(It - Golden.Executed.begin()) + 1;
      Probe({AfterCycle, S.Orig, 0}, false);
      Probe({AfterCycle, S.Orig, W - 1}, false);
      Probe({AfterCycle, S.Shadow, W / 2}, false);
    } else if (S.Kind == ProtectKind::DuplicateReg) {
      // Flip right after every distinct def of the register first
      // executes; each flip must be caught by a downstream check or be
      // provably masked.
      std::vector<bool> Probed(R.HP.Prog.size(), false);
      for (size_t C = 0; C + 1 < Golden.Executed.size(); ++C) {
        uint32_t P = Golden.Executed[C];
        const Instruction &I = R.HP.Prog.instr(P);
        if (Probed[P] || !I.writesReg() || I.Rd != S.Orig)
          continue;
        Probed[P] = true;
        Probe({C + 1, S.Orig, 0}, true);
        Probe({C + 1, S.Orig, W - 1}, true);
        Probe({C + 1, S.Shadow, W / 2}, true);
      }
    }
  }
}

HardenValidation bec::validateHardening(const HardenResult &R,
                                        const Program &Baseline) {
  HardenValidation V;
  V.VerifierClean = verifyProgram(R.HP.Prog).empty();
  if (!V.VerifierClean)
    return V;

  Trace BaseGolden = simulate(Baseline);
  Trace Golden = simulate(R.HP.Prog);
  V.OutputsMatch = Golden.End == Outcome::Finished &&
                   Golden.ObservableHash == BaseGolden.ObservableHash;
  V.VulnerabilityReduced = R.HP.Sites.empty()
                               ? R.ResidualVuln == R.BaselineVuln
                               : R.ResidualVuln < R.BaselineVuln;
  runDetectionProbes(R, Golden, V);
  return V;
}
