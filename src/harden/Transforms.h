//===- harden/Transforms.h - Protection transforms over the IR ------------===//
///
/// \file
/// The two program transformations of the selective-hardening subsystem,
/// both expressed over the flat IR with index-remapping bookkeeping so a
/// sequence of transforms composes:
///
///  * **Selective duplication** (SWIFT-style): recompute a chosen def
///    into a never-otherwise-accessed shadow register immediately before
///    the def, and insert a `bne rd, shadow, detector` check later in the
///    same basic block (just before the first kill of rd, or before the
///    block's last instruction). Any single-event upset in rd *or* the
///    shadow between the def and the check makes the compare fail and
///    control reach the detector block, which forces a deterministic
///    trap — the fault is detected instead of silent.
///
///  * **Live-range narrowing** (rematerialization by sinking): move a
///    pure def down to just before its first in-block reader when the
///    block's dependence DAG (sched/ListScheduler machinery) permits it.
///    The def's live segment shrinks by the distance moved, removing the
///    corresponding live fault sites at zero dynamic-instruction cost.
///
/// Every transform keeps the program verifier-clean and observationally
/// equivalent; the budgeted selector (harden/Harden.h) re-checks both
/// properties empirically before accepting a transform.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_HARDEN_TRANSFORMS_H
#define BEC_HARDEN_TRANSFORMS_H

#include "ir/Program.h"

#include <array>
#include <vector>

namespace bec {

/// How a protected site is hardened.
enum class ProtectKind : uint8_t {
  /// One def's value is shadowed from the def to a single in-block check.
  Duplicate,
  /// A whole register is shadowed: every def gets a shadow recompute
  /// (chain defs read the shadow, so the shadow always carries the exact
  /// fault-free value) and every non-self use gets a preceding check.
  DuplicateReg,
  /// A def was sunk toward its first reader (live-range narrowing).
  Narrow,
};

/// One applied protection, in the *hardened* program's indices (kept up
/// to date as later transforms shift instructions).
struct ProtectedSite {
  ProtectKind Kind;
  Reg Orig = 0;   ///< Protected register (the def's destination).
  Reg Shadow = 0; ///< Shadow register (Duplicate only).
  /// Duplicate: DupIdx (shadow recompute), DefIdx (the protected def) and
  /// CheckIdx (the compare-and-branch); the protection window is
  /// [DefIdx's cycle, CheckIdx's cycle) in any execution.
  uint32_t DupIdx = 0;
  uint32_t DefIdx = 0;
  uint32_t CheckIdx = 0;
  /// Narrow: original and final index of the moved def.
  uint32_t MovedFrom = 0;
  uint32_t MovedTo = 0;
};

/// A program plus its protection bookkeeping; the unit the selector
/// iterates on.
struct HardenedProgram {
  Program Prog;
  /// Index of the first detector instruction, or -1 while no duplication
  /// has been applied yet.
  int32_t DetectorIdx = -1;
  std::vector<ProtectedSite> Sites;

  /// True if \p P belongs to hardening machinery (detector block, shadow
  /// recompute or check) rather than original program code.
  bool isHardeningInstr(uint32_t P) const;

  /// Bitmask of the protected (Orig) registers across all sites.
  uint32_t origRegMask() const;
  /// Bitmask of the shadow registers across all sites.
  uint32_t shadowRegMask() const;
};

/// A duplication opportunity on the current program. (The selector
/// learns real dynamic cost by measuring, so candidates carry none.)
struct DupCandidate {
  uint32_t Def;      ///< Instruction whose destination gets a shadow.
  uint32_t CheckPos; ///< Insert the check before this index.
  uint64_t Score;    ///< Rank: live fault sites the window can cover.
};

/// A narrowing opportunity on the current program.
struct SinkCandidate {
  uint32_t From;  ///< The def to move.
  uint32_t To;    ///< Its first in-block reader; lands at To - 1.
  uint64_t Score; ///< Rank: live fault sites of the shrinking segment.
};

/// A register-granular duplication opportunity.
struct RegDupCandidate {
  Reg R;          ///< Register whose whole live surface gets shadowed.
  uint64_t Score; ///< Rank: live fault sites the register carries.
};

/// Registers never accessed by \p Prog (excluding x0), usable as shadows.
std::vector<Reg> freeRegisters(const Program &Prog);

/// Enumerates duplication sites: defs with a coverable same-block window.
/// \p DefScore comes from VulnerabilityRank (indexed by instruction).
std::vector<DupCandidate>
findDupCandidates(const HardenedProgram &HP,
                  const std::vector<uint64_t> &DefScore);

/// Enumerates sinking sites permitted by the block dependence DAGs.
std::vector<SinkCandidate>
findSinkCandidates(const HardenedProgram &HP,
                   const std::vector<uint64_t> &DefScore);

/// Applies one duplication: inserts the shadow recompute before \p Def,
/// the check before \p CheckPos, and (on first use) the shared detector
/// block. Appends a ProtectedSite and remaps existing site indices.
/// The program's CFG is rebuilt.
void applyDuplication(HardenedProgram &HP, const DupCandidate &C);

/// Applies one narrowing: rotates \p C.From down to \p C.To - 1 within
/// its block, remapping existing site indices. The CFG is rebuilt.
void applySinking(HardenedProgram &HP, const SinkCandidate &C);

/// Enumerates register-granular duplication sites. \p RegScore is
/// VulnerabilityRank's per-register attribution.
std::vector<RegDupCandidate>
findRegDupCandidates(const HardenedProgram &HP,
                     const std::array<uint64_t, NumRegs> &RegScore);

/// Applies one register duplication: rebuilds the program with a shadow
/// recompute before every def of \p C.R and a check before every non-self
/// use, remapping branch targets, the entry point and existing site
/// indices. The CFG is rebuilt.
void applyRegisterDuplication(HardenedProgram &HP, const RegDupCandidate &C);

} // namespace bec

#endif // BEC_HARDEN_TRANSFORMS_H
