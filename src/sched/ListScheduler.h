//===- sched/ListScheduler.h - Vulnerability-aware instruction scheduling -===//
///
/// \file
/// The paper's second use case (Section VI-B, Algorithm 4): list
/// scheduling within each basic block where the number of fault sites a
/// candidate instruction retires (in bits, per the BEC analysis) is the
/// selection criterion. `BestReliability` picks, among ready instructions,
/// the one that minimizes the live-fault-bit surface; `WorstReliability`
/// the opposite (the two ends of Table IV); `SourceOrder` keeps the
/// original order (a correctness baseline).
///
/// Scheduling never changes which instructions execute or how many fault
/// injection runs a campaign needs; it only reorders independent
/// instructions within blocks, preserving all data, memory and
/// side-effect dependences.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SCHED_LISTSCHEDULER_H
#define BEC_SCHED_LISTSCHEDULER_H

#include "core/BECAnalysis.h"

#include <vector>

namespace bec {

enum class SchedulePolicy { BestReliability, WorstReliability, SourceOrder };

/// Dependence DAG of one basic block (nodes are instruction indices).
struct BlockDAG {
  uint32_t First = 0; ///< First instruction of the block.
  /// Per node (offset from First): direct successors and predecessor count.
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<uint32_t> NumPreds;
};

/// Builds the dependence DAG of block \p B: register RAW/WAR/WAW edges,
/// conservative memory edges (no alias analysis), side-effect ordering,
/// and terminator-last edges.
BlockDAG buildBlockDAG(const Program &Prog, const BasicBlock &B);

/// Reorders every basic block of \p A's program under \p Policy, driven
/// by \p A's per-access-point masked-bit summaries. Returns a new program
/// (with rebuilt CFG) that is observationally equivalent to the input.
Program scheduleProgram(const BECAnalysis &A, SchedulePolicy Policy);

} // namespace bec

#endif // BEC_SCHED_LISTSCHEDULER_H
