//===- sched/ListScheduler.cpp - Vulnerability-aware list scheduling ------===//

#include "sched/ListScheduler.h"

#include "support/Debug.h"

#include <algorithm>

using namespace bec;

BlockDAG bec::buildBlockDAG(const Program &Prog, const BasicBlock &B) {
  uint32_t N = B.size();
  BlockDAG DAG;
  DAG.First = B.First;
  DAG.Succs.assign(N, {});
  DAG.NumPreds.assign(N, 0);

  auto AddEdge = [&](uint32_t From, uint32_t To) {
    assert(From < To && "dependence edges go forward in source order");
    auto &S = DAG.Succs[From];
    if (std::find(S.begin(), S.end(), To) == S.end()) {
      S.push_back(To);
      ++DAG.NumPreds[To];
    }
  };

  // Register dependences: for each register track the last writer and all
  // readers since that write.
  std::array<int32_t, NumRegs> LastWriter;
  LastWriter.fill(-1);
  std::array<std::vector<uint32_t>, NumRegs> ReadersSinceWrite;

  int32_t LastSideEffect = -1; // stores/out: keep their relative order
  std::vector<uint32_t> LoadsSinceStore;
  int32_t LastStore = -1;

  for (uint32_t K = 0; K < N; ++K) {
    uint32_t P = B.First + K;
    const Instruction &I = Prog.instr(P);

    Reg Reads[2];
    unsigned NumReads = I.readRegs(Reads);
    for (unsigned R = 0; R < NumReads; ++R) {
      Reg V = Reads[R];
      if (LastWriter[V] >= 0)
        AddEdge(static_cast<uint32_t>(LastWriter[V]), K); // RAW
      ReadersSinceWrite[V].push_back(K);
    }
    if (I.writesReg()) {
      Reg V = I.Rd;
      if (LastWriter[V] >= 0)
        AddEdge(static_cast<uint32_t>(LastWriter[V]), K); // WAW
      for (uint32_t Reader : ReadersSinceWrite[V])
        if (Reader != K)
          AddEdge(Reader, K); // WAR
      ReadersSinceWrite[V].clear();
      LastWriter[V] = static_cast<int32_t>(K);
    }

    if (isLoad(I.Op)) {
      if (LastStore >= 0)
        AddEdge(static_cast<uint32_t>(LastStore), K);
      LoadsSinceStore.push_back(K);
    }
    if (isStore(I.Op)) {
      if (LastStore >= 0)
        AddEdge(static_cast<uint32_t>(LastStore), K);
      for (uint32_t L : LoadsSinceStore)
        AddEdge(L, K);
      LoadsSinceStore.clear();
      LastStore = static_cast<int32_t>(K);
    }
    if (hasSideEffects(I.Op)) {
      if (LastSideEffect >= 0)
        AddEdge(static_cast<uint32_t>(LastSideEffect), K);
      LastSideEffect = static_cast<int32_t>(K);
    }

    // The terminator stays last.
    if (K == N - 1 && isTerminator(I.Op))
      for (uint32_t J = 0; J + 1 < N; ++J)
        AddEdge(J, K);
  }
  return DAG;
}

namespace {

/// Greedy list scheduling of one block. The score of a ready instruction
/// is the change it causes to the live-fault-bit surface: scheduling p
/// makes, for each register it accesses, the access point (p,v) the new
/// governing segment, replacing the previous governor's live bits.
class BlockScheduler {
public:
  BlockScheduler(const BECAnalysis &A, const BasicBlock &B,
                 SchedulePolicy Policy)
      : A(A), Prog(A.program()), B(B), Policy(Policy),
        DAG(buildBlockDAG(Prog, B)) {}

  /// Appends the chosen instruction order (original indices) to \p Out.
  void schedule(std::vector<uint32_t> &Out);

private:
  int64_t liveBitsAfter(uint32_t P, Reg V) const {
    int32_t Ap = A.space().pointId(P, V);
    assert(Ap >= 0 && "accessed register without access point");
    const auto &S = A.summary(static_cast<uint32_t>(Ap));
    return static_cast<int64_t>(Prog.Width) -
           popCount(S.MaskedMask, Prog.Width);
  }

  /// Surface delta of scheduling \p K next (lower = fewer live sites).
  int64_t scoreOf(uint32_t K) const {
    uint32_t P = B.First + K;
    const Instruction &I = Prog.instr(P);
    if (isHalt(I.Op))
      return 0;
    int64_t Delta = 0;
    auto [ApBegin, ApEnd] = A.space().pointsOfInstr(P);
    for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
      Reg V = A.space().point(Ap).R;
      Delta += liveBitsAfter(P, V) - Current[V];
    }
    return Delta;
  }

  const BECAnalysis &A;
  const Program &Prog;
  const BasicBlock &B;
  SchedulePolicy Policy;
  BlockDAG DAG;
  /// Current live-bit contribution of each register's governing segment
  /// within this block walk.
  std::array<int64_t, NumRegs> Current{};
};

} // namespace

void BlockScheduler::schedule(std::vector<uint32_t> &Out) {
  uint32_t N = B.size();
  // Registers live into the block contribute their full width (their
  // governing segment is outside the block; unknown masking).
  Current.fill(0);
  uint32_t LiveIn = A.liveness().liveInMask(B.First);
  for (Reg V = 1; V < NumRegs; ++V)
    if ((LiveIn >> V) & 1)
      Current[V] = Prog.Width;

  std::vector<uint32_t> PredsLeft = DAG.NumPreds;
  std::vector<bool> Scheduled(N, false);

  for (uint32_t Step = 0; Step < N; ++Step) {
    int32_t Best = -1;
    int64_t BestScore = 0;
    for (uint32_t K = 0; K < N; ++K) {
      if (Scheduled[K] || PredsLeft[K] != 0)
        continue;
      if (Policy == SchedulePolicy::SourceOrder) {
        Best = static_cast<int32_t>(K);
        break;
      }
      int64_t Score = scoreOf(K);
      if (Best < 0) {
        Best = static_cast<int32_t>(K);
        BestScore = Score;
        continue;
      }
      bool Better = Policy == SchedulePolicy::BestReliability
                        ? Score < BestScore
                        : Score > BestScore;
      if (Better) {
        Best = static_cast<int32_t>(K);
        BestScore = Score;
      }
    }
    assert(Best >= 0 && "dependence cycle in block DAG");
    uint32_t K = static_cast<uint32_t>(Best);
    Scheduled[K] = true;
    for (uint32_t S : DAG.Succs[K])
      --PredsLeft[S];

    uint32_t P = B.First + K;
    const Instruction &I = Prog.instr(P);
    if (!isHalt(I.Op)) {
      auto [ApBegin, ApEnd] = A.space().pointsOfInstr(P);
      for (uint32_t Ap = ApBegin; Ap < ApEnd; ++Ap) {
        Reg V = A.space().point(Ap).R;
        Current[V] = liveBitsAfter(P, V);
      }
    }
    Out.push_back(P);
  }
}

Program bec::scheduleProgram(const BECAnalysis &A, SchedulePolicy Policy) {
  const Program &Prog = A.program();
  // New order, block by block, in original block order.
  std::vector<uint32_t> Order;
  Order.reserve(Prog.size());
  for (const BasicBlock &B : Prog.blocks()) {
    BlockScheduler Scheduler(A, B, Policy);
    Scheduler.schedule(Order);
  }
  assert(Order.size() == Prog.size() && "scheduler dropped instructions");

  // Rebuild the program. Branch targets address block leaders; map the
  // old target instruction to the first instruction of its block in the
  // new order (blocks keep their extents and order).
  std::vector<uint32_t> NewIndexOf(Prog.size());
  for (uint32_t NewP = 0; NewP < Order.size(); ++NewP)
    NewIndexOf[Order[NewP]] = NewP;

  Program Out;
  Out.Name = Prog.Name + ".sched";
  Out.Width = Prog.Width;
  Out.MemSize = Prog.MemSize;
  Out.DataBase = Prog.DataBase;
  Out.Data = Prog.Data;
  // Block extents keep their positions, so the entry block's leader sits
  // at the same index as before.
  Out.Entry = Prog.blocks()[Prog.blockOf(Prog.Entry)].First;

  Out.Instrs.resize(Prog.size());
  for (uint32_t NewP = 0; NewP < Order.size(); ++NewP) {
    Instruction I = Prog.instr(Order[NewP]);
    if (I.Target != NoTarget) {
      uint32_t TargetBlock = Prog.blockOf(static_cast<uint32_t>(I.Target));
      I.Target = static_cast<int32_t>(Prog.blocks()[TargetBlock].First);
    }
    Out.Instrs[NewP] = I;
  }
  Out.buildCFG();
  return Out;
}
