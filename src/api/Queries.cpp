//===- api/Queries.cpp - Query catalog implementations --------------------===//

#include "api/Queries.h"

#include "ir/Verifier.h"
#include "sim/Interpreter.h"

#include <cinttypes>
#include <cstdio>

using namespace bec;

//===----------------------------------------------------------------------===//
// Fingerprint helpers
//===----------------------------------------------------------------------===//

namespace {

std::string fpNum(uint64_t V) { return std::to_string(V); }

/// Exact (hex-float) double encoding so fingerprints never collide through
/// decimal rounding.
std::string fpDouble(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

/// Shared "golden run finished?" prefix of every subcommand query.
template <class R>
bool commonPrefix(AnalysisSession &S, const CachedProgramPtr &P, R &Out) {
  std::shared_ptr<const Trace> G = S.get<TraceQuery>(P);
  if (G->End != Outcome::Finished) {
    Out.Error = "golden run ended with " + std::string(outcomeName(G->End));
    return false;
  }
  Out.Instrs = P->program().size();
  Out.Cycles = G->Cycles;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Primitive queries
//===----------------------------------------------------------------------===//

VerifyQuery::Result VerifyQuery::compute(AnalysisSession &,
                                         const CachedProgramPtr &P,
                                         const Options &) {
  return verifyProgram(P->program());
}

TraceQuery::Result TraceQuery::compute(AnalysisSession &,
                                       const CachedProgramPtr &P,
                                       const Options &) {
  return simulate(P->program());
}

LivenessQuery::Result LivenessQuery::compute(AnalysisSession &,
                                             const CachedProgramPtr &P,
                                             const Options &) {
  return Liveness::run(P->program());
}

UseDefQuery::Result UseDefQuery::compute(AnalysisSession &,
                                         const CachedProgramPtr &P,
                                         const Options &) {
  return UseDef::run(P->program());
}

BitValuesQuery::Result BitValuesQuery::compute(AnalysisSession &,
                                               const CachedProgramPtr &P,
                                               const Options &) {
  return BitValueAnalysis::run(P->program());
}

std::string BECQuery::fingerprint(const Options &O) {
  // Default options fingerprint to "" (the common key).
  if (O.Fates.BitwiseRules && O.Fates.EvalRules && O.InterInstruction &&
      O.GlobalBitValues)
    return {};
  std::string F;
  F += O.Fates.BitwiseRules ? 'b' : '-';
  F += O.Fates.EvalRules ? 'e' : '-';
  F += O.InterInstruction ? 'i' : '-';
  F += O.GlobalBitValues ? 'g' : '-';
  return F;
}

BECQuery::Result BECQuery::compute(AnalysisSession &S,
                                   const CachedProgramPtr &P,
                                   const Options &O) {
  return BECAnalysis::run(P->program(), O, S.get<LivenessQuery>(P),
                          S.get<UseDefQuery>(P), S.get<BitValuesQuery>(P));
}

CountsQuery::Result CountsQuery::compute(AnalysisSession &S,
                                         const CachedProgramPtr &P,
                                         const Options &) {
  return countFaultInjectionRuns(*S.get<BECQuery>(P),
                                 S.get<TraceQuery>(P)->Executed);
}

VulnQuery::Result VulnQuery::compute(AnalysisSession &S,
                                     const CachedProgramPtr &P,
                                     const Options &) {
  return computeVulnerability(*S.get<BECQuery>(P),
                              S.get<TraceQuery>(P)->Executed);
}

RankQuery::Result RankQuery::compute(AnalysisSession &S,
                                     const CachedProgramPtr &P,
                                     const Options &) {
  return VulnerabilityRank::run(*S.get<BECQuery>(P),
                                S.get<TraceQuery>(P)->Executed);
}

std::string CampaignQuery::fingerprint(const Options &O) {
  std::string F = fpNum(static_cast<uint64_t>(O.Plan)) + "," +
                  fpNum(O.MaxCycles);
  if (O.SampleSize)
    F += ",s" + fpNum(O.SampleSize) + "," + fpNum(O.SampleSeed);
  // Prefix checkpointing surfaces in the result's telemetry fields
  // (CheckpointsCreated, SplicedRuns, SimulatedCycles), so a
  // non-default mode keys its own entry. The default (on, auto) adds
  // nothing: pre-existing cache keys stay valid.
  if (!O.PrefixCheckpoint)
    F += ",c-";
  else if (O.CheckpointEveryK)
    F += ",c" + fpNum(O.CheckpointEveryK);
  // Exec knobs that can change the cached *value* key separate entries:
  // the checkpoint path (I/O failures become the result's Error; resume
  // changes ResumedShards), an interruption limit (partial results),
  // and the shard geometry (the Shards field). Threads and the progress
  // callback never change the value and stay excluded — any thread
  // count shares one entry.
  if (!O.Exec.CheckpointPath.empty() || O.Exec.StopAfterShards ||
      O.Exec.ShardSize)
    F += ",x" + fpNum(O.Exec.ShardSize) + "," +
         fpNum(O.Exec.StopAfterShards) + (O.Exec.Resume ? ",r," : ",-,") +
         O.Exec.CheckpointPath;
  // Profiling surfaces in the result (the Profile member), so a
  // profiled run keys its own entry; a cache hit could otherwise hand
  // back an unprofiled result to a --profile run.
  if (O.Exec.CollectProfile)
    F += ",p";
  return F;
}

CampaignQuery::Result CampaignQuery::compute(AnalysisSession &S,
                                             const CachedProgramPtr &P,
                                             const Options &O) {
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(P);
  std::shared_ptr<const Trace> G = S.get<TraceQuery>(P);
  PlanOptions PO;
  PO.Kind = O.Plan;
  PO.MaxCycles = O.MaxCycles;
  PO.SampleSize = O.SampleSize;
  PO.SampleSeed = O.SampleSeed;
  PO.PrefixCheckpoint = O.PrefixCheckpoint;
  PO.CheckpointEveryK = O.CheckpointEveryK;
  CampaignPlan Plan = CampaignPlan::build(*A, *G, PO);
  return runCampaign(P->program(), *G, Plan, O.Exec);
}

std::string ValidationQuery::fingerprint(const Options &O) {
  return fpNum(O.MaxCycles);
}

ValidationQuery::Result ValidationQuery::compute(AnalysisSession &S,
                                                 const CachedProgramPtr &P,
                                                 const Options &O) {
  return validateAnalysis(*S.get<BECQuery>(P), *S.get<TraceQuery>(P),
                          O.MaxCycles);
}

//===----------------------------------------------------------------------===//
// Hardening queries
//===----------------------------------------------------------------------===//

std::string HardenQuery::fingerprint(const Options &O) {
  return fpDouble(O.BudgetPercent) + "," + fpNum(O.MaxSites) + "," +
         fpNum(O.ProbesPerRound) + "," + (O.EnableDuplication ? "d" : "-") +
         (O.EnableNarrowing ? "n" : "-");
}

HardenQuery::Result HardenQuery::compute(AnalysisSession &S,
                                         const CachedProgramPtr &P,
                                         const Options &O) {
  HardenPoint Point;
  Point.Harden = hardenProgram(S, P, O);
  Point.Check = validateHardening(S, P, Point.Harden);
  return Point;
}

//===----------------------------------------------------------------------===//
// Subcommand queries
//===----------------------------------------------------------------------===//

AnalyzeQuery::Result AnalyzeQuery::compute(AnalysisSession &S,
                                           const CachedProgramPtr &P,
                                           const Options &) {
  AnalyzeResult R;
  if (!commonPrefix(S, P, R))
    return R;
  R.Counts = *S.get<CountsQuery>(P);
  R.Vulnerability = *S.get<VulnQuery>(P);
  return R;
}

CampaignCmdQuery::Result CampaignCmdQuery::compute(AnalysisSession &S,
                                                   const CachedProgramPtr &P,
                                                   const Options &O) {
  CampaignCmdResult R;
  if (!commonPrefix(S, P, R))
    return R;
  R.Campaign = *S.get<CampaignQuery>(P, O);
  // Engine-level failures (unwritable or incompatible checkpoint) become
  // the subcommand's error, like any other per-target failure.
  R.Error = R.Campaign.Error;
  return R;
}

ScheduleCmdQuery::Result ScheduleCmdQuery::compute(AnalysisSession &S,
                                                   const CachedProgramPtr &P,
                                                   const Options &) {
  ScheduleCmdResult R;
  if (!commonPrefix(S, P, R))
    return R;
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(P);
  R.PolicyVuln[0] = *S.get<VulnQuery>(P);
  R.PolicyAsm[0] = scheduleProgram(*A, SchedulePolicy::SourceOrder).toString();
  const SchedulePolicy Policies[] = {SchedulePolicy::BestReliability,
                                     SchedulePolicy::WorstReliability};
  for (unsigned I = 0; I < 2; ++I) {
    Program Sched = scheduleProgram(*A, Policies[I]);
    R.PolicyAsm[1 + I] = Sched.toString();
    // The scheduled program is interned too: re-asking (or a target whose
    // schedule coincides with another's) reuses its whole analysis stack.
    CachedProgramPtr SP = S.intern(std::move(Sched));
    std::shared_ptr<const Trace> SG = S.get<TraceQuery>(SP);
    if (SG->End != Outcome::Finished) {
      R.Error =
          "scheduled run ended with " + std::string(outcomeName(SG->End));
      return R;
    }
    R.PolicyVuln[1 + I] = *S.get<VulnQuery>(SP);
  }
  return R;
}

std::string HardenCmdQuery::fingerprint(const Options &O) {
  std::string F;
  for (double B : O.Budgets)
    F += fpDouble(B) + ";";
  HardenOptions Base = O.Base;
  Base.BudgetPercent = 0; // Budget comes from the list.
  return F + HardenQuery::fingerprint(Base);
}

HardenCmdQuery::Result HardenCmdQuery::compute(AnalysisSession &S,
                                               const CachedProgramPtr &P,
                                               const Options &O) {
  HardenCmdResult R;
  if (!commonPrefix(S, P, R))
    return R;
  for (double Budget : O.Budgets) {
    HardenOptions HO = O.Base;
    HO.BudgetPercent = Budget;
    R.Points.push_back(*S.get<HardenQuery>(P, HO));
  }
  return R;
}

std::string ReportCmdQuery::fingerprint(const Options &O) {
  return fpNum(O.MaxCycles);
}

ReportCmdQuery::Result ReportCmdQuery::compute(AnalysisSession &S,
                                               const CachedProgramPtr &P,
                                               const Options &O) {
  ReportCmdResult R;
  if (!commonPrefix(S, P, R))
    return R;
  R.Counts = *S.get<CountsQuery>(P);
  R.Vulnerability = *S.get<VulnQuery>(P);
  R.Campaign = *S.get<CampaignQuery>(
      P, {PlanKind::BitLevel, O.MaxCycles});
  R.Validation = *S.get<ValidationQuery>(P, {O.MaxCycles});
  return R;
}
