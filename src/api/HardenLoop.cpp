//===- api/HardenLoop.cpp - The budgeted selector on the session cache ----===//
///
/// \file
/// The measure-and-accept loop of harden/Harden.h, rehosted on the
/// AnalysisSession registry. The algorithm (candidate enumeration, rank
/// order, rejection memoization, acceptance rule) is unchanged and
/// produces bit-identical results; what changes is where the pipeline
/// runs: every trial program is interned, so
///
///   * the accepted candidate's verify/trace/BEC results become the next
///     round's baseline for free (the old loop re-ran them cold),
///   * the final re-analysis and the closed-loop validation hit the cache
///     instead of re-simulating,
///   * budget sweeps share every trial measured before the budgets
///     diverge, plus the baseline pipeline itself.
///
/// With Config::Caching=false every get() recomputes and the loop does
/// exactly the work of the PR-2 cold loop — bench_SessionReuse measures
/// the two against each other.
///
//===----------------------------------------------------------------------===//

#include "api/Queries.h"

#include "core/Metrics.h"
#include "harden/VulnerabilityRank.h"

#include <algorithm>
#include <array>
#include <set>
#include <string>

using namespace bec;

namespace {

/// One measured trial of the greedy loop.
struct Measurement {
  bool Valid = false;
  uint64_t ResidualVuln = 0;
  uint64_t Cycles = 0;
};

Measurement measure(AnalysisSession &S, const HardenedProgram &HP,
                    uint64_t ObservableHash, uint64_t BaselineCycles,
                    double BudgetPercent) {
  Measurement M;
  CachedProgramPtr T = S.intern(HP.Prog);
  if (!S.get<VerifyQuery>(T)->empty())
    return M;
  std::shared_ptr<const Trace> G = S.get<TraceQuery>(T);
  if (G->End != Outcome::Finished || G->ObservableHash != ObservableHash)
    return M;
  double Cost = 100.0 *
                (static_cast<double>(G->Cycles) -
                 static_cast<double>(BaselineCycles)) /
                static_cast<double>(BaselineCycles);
  if (Cost > BudgetPercent)
    return M;
  std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(T);
  M.Valid = true;
  M.ResidualVuln = computeResidualVulnerability(*A, G->Executed, HP);
  M.Cycles = G->Cycles;
  return M;
}

/// Stable identity of a candidate across index shifts, used to memoize
/// rejections: the def's rendered text, its ordinal among identical
/// texts (so two equal defs at different sites never share an entry),
/// and the window/target distance.
std::string signatureOf(const Program &Prog, const char *Kind, uint32_t Def,
                        uint32_t End) {
  std::string Text = Prog.instr(Def).toString();
  unsigned Ordinal = 0;
  for (uint32_t P = 0; P < Def; ++P)
    if (Prog.instr(P).toString() == Text)
      ++Ordinal;
  return std::string(Kind) + ":" + Text + "#" + std::to_string(Ordinal) +
         ":" + std::to_string(End - Def);
}

} // namespace

HardenResult bec::hardenProgram(AnalysisSession &S, const CachedProgramPtr &P,
                                const HardenOptions &Opts) {
  HardenResult R;
  R.HP.Prog = P->program();

  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(P);
  if (Golden->End != Outcome::Finished) {
    // Untrusted input, not a programming error: hardening a program whose
    // golden run traps or hangs is meaningless, so return the unmodified
    // program with no sites. validateHardening() on this result reports
    // OutputsMatch=false (the golden run still does not finish), so a
    // HardenQuery's Check flags the situation instead of crashing.
    R.BaselineCycles = Golden->Cycles;
    R.HardenedCycles = Golden->Cycles;
    return R;
  }
  R.BaselineVuln =
      computeVulnerability(*S.get<BECQuery>(P), Golden->Executed);
  R.BaselineCycles = Golden->Cycles;
  R.ResidualVuln = R.BaselineVuln;
  R.HardenedCycles = R.BaselineCycles;

  std::set<std::string> Rejected;
  CachedProgramPtr Cur = P;
  while (R.HP.Sites.size() < Opts.MaxSites) {
    // Round baseline: for every round after the first this is the shard
    // the accepted trial was measured on — a cache hit, where the cold
    // loop re-ran the full analysis and simulation.
    std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(Cur);
    std::shared_ptr<const Trace> G = S.get<TraceQuery>(Cur);
    VulnerabilityRank Rank = VulnerabilityRank::run(*A, G->Executed);
    std::vector<uint64_t> DefScore(R.HP.Prog.size());
    for (uint32_t I = 0; I < R.HP.Prog.size(); ++I)
      DefScore[I] = Rank.defScore(I);
    std::array<uint64_t, NumRegs> RegScore;
    for (Reg V = 0; V < NumRegs; ++V)
      RegScore[V] = Rank.regScore(V);

    // Unified, rank-ordered candidate list over all transforms.
    enum class Kind { Dup, RegDup, Sink };
    struct Candidate {
      uint64_t Score;
      Kind K;
      DupCandidate Dup;
      RegDupCandidate Reg;
      SinkCandidate Sink;
    };
    std::vector<Candidate> Cands;
    if (Opts.EnableDuplication) {
      for (const RegDupCandidate &C : findRegDupCandidates(R.HP, RegScore))
        Cands.push_back({C.Score, Kind::RegDup, {}, C, {}});
      for (const DupCandidate &C : findDupCandidates(R.HP, DefScore))
        Cands.push_back({C.Score, Kind::Dup, C, {}, {}});
    }
    if (Opts.EnableNarrowing)
      for (const SinkCandidate &C : findSinkCandidates(R.HP, DefScore))
        Cands.push_back({C.Score, Kind::Sink, {}, {}, C});
    std::stable_sort(Cands.begin(), Cands.end(),
                     [](const Candidate &L, const Candidate &Rhs) {
                       return L.Score > Rhs.Score;
                     });

    // Measure the top candidates and take the round's best vulnerability
    // drop per added cycle (free transforms rank naturally first).
    // Candidates that fail to improve are memoized by a shift-stable
    // signature and never measured again; improving runners-up stay in
    // play for later rounds.
    HardenedProgram Best;
    Measurement BestM;
    double BestRatio = 0.0;
    bool HaveBest = false;
    unsigned Probed = 0;
    for (const Candidate &C : Cands) {
      if (Probed >= Opts.ProbesPerRound)
        break;
      std::string Sig;
      switch (C.K) {
      case Kind::Dup:
        Sig = signatureOf(R.HP.Prog, "dup", C.Dup.Def, C.Dup.CheckPos);
        break;
      case Kind::RegDup:
        Sig = "regdup:" + std::string(regName(C.Reg.R));
        break;
      case Kind::Sink:
        Sig = signatureOf(R.HP.Prog, "sink", C.Sink.From, C.Sink.To);
        break;
      }
      if (Rejected.count(Sig))
        continue;
      HardenedProgram Trial = R.HP;
      switch (C.K) {
      case Kind::Dup:
        applyDuplication(Trial, C.Dup);
        break;
      case Kind::RegDup:
        applyRegisterDuplication(Trial, C.Reg);
        break;
      case Kind::Sink:
        applySinking(Trial, C.Sink);
        break;
      }
      ++Probed;
      Measurement M = measure(S, Trial, Golden->ObservableHash,
                              R.BaselineCycles, Opts.BudgetPercent);
      if (!M.Valid || M.ResidualVuln >= R.ResidualVuln) {
        Rejected.insert(Sig);
        continue;
      }
      double Gain = static_cast<double>(R.ResidualVuln - M.ResidualVuln);
      double AddedCycles =
          M.Cycles > R.HardenedCycles
              ? static_cast<double>(M.Cycles - R.HardenedCycles)
              : 0.0;
      double Ratio = Gain / (AddedCycles + 1.0);
      if (!HaveBest || Ratio > BestRatio) {
        HaveBest = true;
        BestRatio = Ratio;
        Best = std::move(Trial);
        BestM = M;
      }
    }
    if (!HaveBest)
      break;
    R.HP = std::move(Best);
    R.ResidualVuln = BestM.ResidualVuln;
    R.HardenedCycles = BestM.Cycles;
    // Re-interning the accepted program lands on the shard its
    // measurement filled; the next round starts warm.
    Cur = S.intern(R.HP.Prog);
  }

  for (const ProtectedSite &Site : R.HP.Sites)
    if (Site.Kind == ProtectKind::Narrow)
      ++R.NumNarrowed;
    else
      ++R.NumDuplicated;
  {
    std::shared_ptr<const BECAnalysis> A = S.get<BECQuery>(Cur);
    std::shared_ptr<const Trace> G = S.get<TraceQuery>(Cur);
    R.HardenedRawVuln = computeVulnerability(*A, G->Executed);
  }
  return R;
}

HardenValidation bec::validateHardening(AnalysisSession &S,
                                        const CachedProgramPtr &Baseline,
                                        const HardenResult &R) {
  HardenValidation V;
  CachedProgramPtr HPShard = S.intern(R.HP.Prog);
  V.VerifierClean = S.get<VerifyQuery>(HPShard)->empty();
  if (!V.VerifierClean)
    return V;

  std::shared_ptr<const Trace> BaseGolden = S.get<TraceQuery>(Baseline);
  std::shared_ptr<const Trace> Golden = S.get<TraceQuery>(HPShard);
  V.OutputsMatch = Golden->End == Outcome::Finished &&
                   Golden->ObservableHash == BaseGolden->ObservableHash;
  V.VulnerabilityReduced = R.HP.Sites.empty()
                               ? R.ResidualVuln == R.BaselineVuln
                               : R.ResidualVuln < R.BaselineVuln;
  runDetectionProbes(R, *Golden, V);
  return V;
}

//===----------------------------------------------------------------------===//
// Classic (session-free) entry points
//===----------------------------------------------------------------------===//

HardenResult bec::hardenProgram(const Program &Prog,
                                const HardenOptions &Opts) {
  AnalysisSession S;
  return hardenProgram(S, S.intern(Prog), Opts);
}
