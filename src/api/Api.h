//===- api/Api.h - The single public include of the BEC library -----------===//
///
/// \file
/// Umbrella header and version stamp of the stable library surface:
///
///   #include "api/Api.h"
///
///   bec::AnalysisSession S;
///   auto T = S.addWorkload("crc32");
///   auto Vuln = S.get<bec::VulnQuery>(*T);       // cached on demand
///   auto Point = S.get<bec::HardenQuery>(*T, {});
///
/// The surface consists of AnalysisSession (session lifecycle, target
/// management, the typed registry, the invalidation protocol), the query
/// catalog of api/Queries.h with its result objects, and the JSON
/// serializers of api/Serialize.h. Everything below src/api/ — the IR,
/// the analyses, the simulator — is usable directly but not
/// version-stamped; its types appear in query results by value.
///
/// Versioning follows semver: MAJOR bumps on breaking changes to any
/// declaration reachable from this header or to the serialized JSON
/// shape, MINOR on compatible additions (new queries, new JSON keys),
/// PATCH otherwise. See docs/api.md for the compatibility contract,
/// ownership/lifetime rules and threading rules.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_API_API_H
#define BEC_API_API_H

// clang-format off
#define BEC_API_VERSION_MAJOR 1
#define BEC_API_VERSION_MINOR 0
#define BEC_API_VERSION_PATCH 0
// clang-format on

/// "MAJOR.MINOR.PATCH", e.g. for a CLI --version or a JSON field.
#define BEC_API_VERSION_STRING "1.0.0"

/// Single integer for compile-time comparisons:
/// BEC_API_VERSION >= 10000 * major + 100 * minor + patch.
#define BEC_API_VERSION                                                        \
  (10000 * BEC_API_VERSION_MAJOR + 100 * BEC_API_VERSION_MINOR +               \
   BEC_API_VERSION_PATCH)

#include "api/AnalysisSession.h"
#include "api/Queries.h"
#include "api/Serialize.h"

namespace bec {

/// Runtime mirror of the version macros (for consumers linking against a
/// prebuilt library).
struct ApiVersion {
  int Major;
  int Minor;
  int Patch;
};

/// The version this library was built as.
ApiVersion apiVersion();

/// The CMake build type this library was compiled as ("Release", "Debug",
/// ...; "unknown" when the build system did not say). Reported by
/// `bec --version` and the becd `version` RPC.
const char *buildType();

} // namespace bec

#endif // BEC_API_API_H
