//===- api/Api.cpp - Runtime version stamp --------------------------------===//

#include "api/Api.h"

bec::ApiVersion bec::apiVersion() {
  return {BEC_API_VERSION_MAJOR, BEC_API_VERSION_MINOR,
          BEC_API_VERSION_PATCH};
}

// Stamped by src/CMakeLists.txt from CMAKE_BUILD_TYPE.
#ifndef BEC_BUILD_TYPE
#define BEC_BUILD_TYPE "unknown"
#endif

const char *bec::buildType() { return BEC_BUILD_TYPE; }
