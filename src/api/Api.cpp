//===- api/Api.cpp - Runtime version stamp --------------------------------===//

#include "api/Api.h"

bec::ApiVersion bec::apiVersion() {
  return {BEC_API_VERSION_MAJOR, BEC_API_VERSION_MINOR,
          BEC_API_VERSION_PATCH};
}
