//===- api/AnalysisSession.cpp - Session core: interning + registry -------===//

#include "api/AnalysisSession.h"

#include "ir/AsmParser.h"
#include "ir/Verifier.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <sstream>

using namespace bec;

//===----------------------------------------------------------------------===//
// Content keys
//===----------------------------------------------------------------------===//

std::string AnalysisSession::contentKeyOf(const Program &P) {
  std::string K;
  K.reserve(32 + P.Data.size() + P.Instrs.size() * 20);
  auto Raw = [&K](const void *Ptr, size_t N) {
    K.append(static_cast<const char *>(Ptr), N);
  };
  auto U64 = [&](uint64_t V) { Raw(&V, sizeof(V)); };
  U64(P.Width);
  U64(P.MemSize);
  U64(P.DataBase);
  U64(P.Entry);
  U64(P.Data.size());
  if (!P.Data.empty())
    Raw(P.Data.data(), P.Data.size());
  U64(P.size());
  for (const Instruction &I : P.Instrs) {
    // Everything semantic; Line and the program name are deliberately
    // excluded so cosmetic differences share one cache shard.
    K += static_cast<char>(static_cast<uint8_t>(I.Op));
    K += static_cast<char>(I.Rd);
    K += static_cast<char>(I.Rs1);
    K += static_cast<char>(I.Rs2);
    U64(static_cast<uint64_t>(I.Imm));
    U64(static_cast<uint64_t>(static_cast<int64_t>(I.Target)));
  }
  return K;
}

size_t CachedProgram::numCachedResults() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

CachedProgramPtr AnalysisSession::intern(Program P) {
  std::string Key = contentKeyOf(P);
  std::lock_guard<std::mutex> Lock(InternMutex);
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Stats.Interned;
  }
  auto It = InternIndex.find(Key);
  if (It != InternIndex.end()) {
    // Refresh LRU position.
    InternLRU.splice(InternLRU.begin(), InternLRU, It->second);
    return *It->second;
  }
  auto Shard = std::make_shared<CachedProgram>();
  Shard->Prog = std::move(P);
  Shard->Key = Key;
  InternLRU.push_front(Shard);
  InternIndex.emplace(std::move(Key), InternLRU.begin());
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Stats.Shards;
  }
  while (InternLRU.size() > Cfg.MaxInternedShards) {
    // Only the index reference is dropped; targets and handed-out results
    // keep evicted shards alive and fully usable.
    InternIndex.erase(InternLRU.back()->Key);
    InternLRU.pop_back();
  }
  // Not InternLRU.front(): the new shard itself may just have been
  // evicted (MaxInternedShards == 0, or a pathologically small cap).
  return Shard;
}

//===----------------------------------------------------------------------===//
// Targets
//===----------------------------------------------------------------------===//

AnalysisSession::TargetId AnalysisSession::addProgram(std::string Name,
                                                      Program P) {
  TargetInfo T;
  T.Name = std::move(Name);
  T.Prog = intern(std::move(P));
  Targets.push_back(std::move(T));
  return static_cast<TargetId>(Targets.size() - 1);
}

std::optional<AnalysisSession::TargetId>
AnalysisSession::addWorkload(std::string_view Name) {
  const Workload *W = findWorkloadAnyCase(Name);
  if (!W)
    return std::nullopt;
  return addProgram(W->Name, loadWorkload(*W));
}

void AnalysisSession::addAllWorkloads() {
  for (const Workload &W : allWorkloads())
    addProgram(W.Name, loadWorkload(W));
}

std::optional<AnalysisSession::TargetId>
AnalysisSession::addAsmFile(const std::string &Path, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  AsmParseResult R = parseAsm(Buf.str(), Path);
  if (!R.succeeded()) {
    Error = Path + " failed to assemble:\n" + R.diagText();
    return std::nullopt;
  }
  return addProgram(Path, std::move(*R.Prog));
}

std::optional<AnalysisSession::TargetId>
AnalysisSession::findTarget(std::string_view Name) const {
  for (size_t I = 0; I < Targets.size(); ++I)
    if (Targets[I].Name == Name)
      return static_cast<TargetId>(I);
  return std::nullopt;
}

std::vector<std::string>
AnalysisSession::mutate(TargetId T, const std::function<void(Program &)> &Fn) {
  Program Mutated = Targets[T].Prog->program();
  Fn(Mutated);
  // Verify before buildCFG: the verifier works without a CFG, and buildCFG
  // is entitled to assume a structurally sound program.
  std::vector<std::string> Errors = verifyProgram(Mutated);
  if (!Errors.empty())
    return Errors;
  Mutated.buildCFG();
  ++Targets[T].Epoch;
  Targets[T].Prog = intern(std::move(Mutated));
  return {};
}

//===----------------------------------------------------------------------===//
// Registry internals
//===----------------------------------------------------------------------===//

namespace {

/// "Key of Shard is being computed" frames, innermost last. Thread-local:
/// concurrent evaluateAll workers each carry their own compute stack.
struct ActiveFrame {
  const AnalysisSession *Session;
  CachedProgram *Shard;
  std::string Key;
};

thread_local std::vector<ActiveFrame> ActiveFrames;

} // namespace

AnalysisSession::ComputeFrame::ComputeFrame(AnalysisSession *S,
                                            CachedProgram *Shard,
                                            std::string Key) {
  ActiveFrames.push_back({S, Shard, std::move(Key)});
}

AnalysisSession::ComputeFrame::~ComputeFrame() { ActiveFrames.pop_back(); }

bool AnalysisSession::inNestedComputeOf(const CachedProgram *Shard) const {
  return !ActiveFrames.empty() && ActiveFrames.back().Session == this &&
         ActiveFrames.back().Shard == Shard;
}

std::shared_ptr<detail::CacheEntry>
AnalysisSession::entryFor(CachedProgram &Shard, const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  std::shared_ptr<detail::CacheEntry> &E = Shard.Entries[Key];
  if (!E)
    E = std::make_shared<detail::CacheEntry>();
  return E;
}

void AnalysisSession::noteDependency(CachedProgram &Shard,
                                     const std::string &Key) {
  // If this get() happens while another query of the *same shard* is being
  // computed on this thread, that query depends on Key.
  if (ActiveFrames.empty())
    return;
  const ActiveFrame &Parent = ActiveFrames.back();
  if (Parent.Session != this || Parent.Shard != &Shard ||
      Parent.Key == Key)
    return;
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  auto It = Shard.Entries.find(Key);
  if (It == Shard.Entries.end())
    return; // Caching disabled: no entry to hang the edge on.
  std::vector<std::string> &Deps = It->second->Dependents;
  if (std::find(Deps.begin(), Deps.end(), Parent.Key) == Deps.end())
    Deps.push_back(Parent.Key);
}

void AnalysisSession::invalidateKey(CachedProgram &Shard,
                                    const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  std::deque<std::string> Work{Key};
  while (!Work.empty()) {
    std::string K = std::move(Work.front());
    Work.pop_front();
    auto It = Shard.Entries.find(K);
    if (It == Shard.Entries.end())
      continue;
    for (std::string &Dep : It->second->Dependents)
      Work.push_back(std::move(Dep));
    Shard.Entries.erase(It);
  }
}

void AnalysisSession::countHit() {
  static const obs::Counter Hits("session.query.hit");
  Hits.add();
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Stats.Hits;
}

void AnalysisSession::countMiss() {
  static const obs::Counter Misses("session.query.miss");
  Misses.add();
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Stats.Misses;
}

SessionStats AnalysisSession::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}
