//===- api/Serialize.cpp - JSON and table rendering of subcommand results -===//

#include "api/Serialize.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cmath>

using namespace bec;

namespace {

const char *planName(PlanKind Plan) {
  return Plan == PlanKind::Exhaustive   ? "exhaustive"
         : Plan == PlanKind::ValueLevel ? "value-level"
                                        : "bit-level";
}

void jsonCounts(JsonWriter &W, uint32_t Instrs, uint64_t Cycles,
                const FaultInjectionCounts &C, uint64_t Vulnerability) {
  W.key("instrs").value(uint64_t(Instrs));
  W.key("cycles").value(Cycles);
  W.key("fault_space").value(C.TotalFaultSpace);
  W.key("value_level_runs").value(C.ValueLevelRuns);
  W.key("bit_level_runs").value(C.BitLevelRuns);
  W.key("masked_bits").value(C.MaskedBits);
  W.key("inferrable_bits").value(C.InferrableBits);
  W.key("pruned_fraction").value(C.prunedFraction());
  W.key("vulnerability").value(Vulnerability);
}

void jsonCampaign(JsonWriter &W, const CampaignResult &C) {
  W.key("campaign").beginObject();
  W.key("runs").value(C.Runs);
  W.key("effects").beginObject();
  for (unsigned E = 0; E < NumFaultEffects; ++E)
    W.key(toLowerAscii(faultEffectName(FaultEffect(E))))
        .value(C.EffectCounts[E]);
  W.endObject();
  // Per-class breakdown as fractions of the executed runs: what the
  // counts alone make every consumer recompute.
  W.key("rates").beginObject();
  for (unsigned E = 0; E < NumFaultEffects; ++E)
    W.key(toLowerAscii(faultEffectName(FaultEffect(E))))
        .value(C.Runs ? double(C.EffectCounts[E]) / double(C.Runs) : 0.0);
  W.endObject();
  if (C.Sample) {
    const SampleSummary &S = *C.Sample;
    W.key("sample").beginObject();
    W.key("runs").value(S.SampleRuns);
    W.key("population").value(S.PopulationRuns);
    W.key("seed").value(S.Seed);
    W.key("ci95").beginObject();
    for (unsigned E = 0; E < NumFaultEffects; ++E) {
      W.key(toLowerAscii(faultEffectName(FaultEffect(E)))).beginObject();
      W.key("lo").value(S.CI[E].Lo);
      W.key("hi").value(S.CI[E].Hi);
      W.endObject();
    }
    W.endObject();
    W.endObject();
  }
  W.key("distinct_traces").value(C.DistinctTraces);
  W.key("seconds").value(C.Seconds);
  W.endObject();
}

void jsonValidation(JsonWriter &W, const ValidationResult &V) {
  W.key("validation").beginObject();
  W.key("sound_precise_pairs").value(V.SoundPrecisePairs);
  W.key("sound_imprecise_pairs").value(V.SoundImprecisePairs);
  W.key("unsound_pairs").value(V.UnsoundPairs);
  W.key("masked_violations").value(V.MaskedViolations);
  W.key("cross_violations").value(V.CrossViolations);
  W.key("runs_executed").value(V.RunsExecuted);
  W.key("sound").value(V.sound());
  W.endObject();
}

void jsonHardenPoints(JsonWriter &W, const HardenCmdResult &R,
                      std::span<const double> Budgets) {
  W.key("points").beginArray();
  for (size_t B = 0; B < Budgets.size(); ++B) {
    const HardenResult &H = R.Points[B].Harden;
    const HardenValidation &V = R.Points[B].Check;
    W.beginObject();
    W.key("budget_percent").value(Budgets[B]);
    W.key("cost_percent").value(H.costPercent());
    W.key("baseline_vulnerability").value(H.BaselineVuln);
    W.key("residual_vulnerability").value(H.ResidualVuln);
    W.key("hardened_raw_vulnerability").value(H.HardenedRawVuln);
    W.key("reduction").value(H.reduction());
    W.key("baseline_cycles").value(H.BaselineCycles);
    W.key("hardened_cycles").value(H.HardenedCycles);
    W.key("duplicated").value(uint64_t(H.NumDuplicated));
    W.key("narrowed").value(uint64_t(H.NumNarrowed));
    W.key("validation").beginObject();
    W.key("verifier_clean").value(V.VerifierClean);
    W.key("outputs_match").value(V.OutputsMatch);
    W.key("vulnerability_reduced").value(V.VulnerabilityReduced);
    W.key("detection_probes").value(V.DetectionProbes);
    W.key("detections_caught").value(V.DetectionsCaught);
    W.key("ok").value(V.ok());
    W.endObject();
    W.endObject();
  }
  W.endArray();
}

/// The shared document frame: {"command": ..., <Extra>, "targets": [...]}
/// with per-target name/error handling identical across subcommands.
template <class R, class ExtraFn, class BodyFn>
std::string renderDocument(const char *Command,
                           std::span<const std::string> Names,
                           std::span<const std::shared_ptr<const R>> Results,
                           ExtraFn Extra, BodyFn Body) {
  JsonWriter W;
  W.beginObject();
  W.key("command").value(Command);
  Extra(W);
  W.key("targets").beginArray();
  for (size_t I = 0; I < Names.size(); ++I) {
    const R &Res = *Results[I];
    W.beginObject();
    W.key("name").value(Names[I]);
    if (!Res.Error.empty())
      W.key("error").value(Res.Error);
    else
      Body(W, Res);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take() + "\n";
}

void noExtra(JsonWriter &) {}

} // namespace

std::string bec::renderAnalyzeJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const AnalyzeResult>> Results) {
  return renderDocument<AnalyzeResult>(
      "analyze", Names, Results, noExtra,
      [](JsonWriter &W, const AnalyzeResult &R) {
        jsonCounts(W, R.Instrs, R.Cycles, R.Counts, R.Vulnerability);
      });
}

std::string bec::renderCampaignJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const CampaignCmdResult>> Results,
    PlanKind Plan) {
  return renderDocument<CampaignCmdResult>(
      "campaign", Names, Results,
      [&](JsonWriter &W) { W.key("plan").value(planName(Plan)); },
      [](JsonWriter &W, const CampaignCmdResult &R) {
        W.key("instrs").value(uint64_t(R.Instrs));
        W.key("cycles").value(R.Cycles);
        jsonCampaign(W, R.Campaign);
      });
}

std::string bec::renderScheduleJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ScheduleCmdResult>> Results) {
  return renderDocument<ScheduleCmdResult>(
      "schedule", Names, Results, noExtra,
      [](JsonWriter &W, const ScheduleCmdResult &R) {
        W.key("instrs").value(uint64_t(R.Instrs));
        W.key("cycles").value(R.Cycles);
        W.key("source_vulnerability").value(R.PolicyVuln[0]);
        W.key("best_vulnerability").value(R.PolicyVuln[1]);
        W.key("worst_vulnerability").value(R.PolicyVuln[2]);
        // Positive = the best-reliability schedule shrinks the surface,
        // matching the text table's "Best vs source" column.
        double Delta = R.PolicyVuln[0] == 0
                           ? 0.0
                           : 1.0 - double(R.PolicyVuln[1]) /
                                       double(R.PolicyVuln[0]);
        W.key("best_vs_source").value(Delta);
      });
}

std::string bec::renderHardenJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const HardenCmdResult>> Results,
    std::span<const double> Budgets) {
  return renderDocument<HardenCmdResult>(
      "harden", Names, Results, noExtra,
      [&](JsonWriter &W, const HardenCmdResult &R) {
        W.key("instrs").value(uint64_t(R.Instrs));
        W.key("cycles").value(R.Cycles);
        jsonHardenPoints(W, R, Budgets);
      });
}

std::string bec::renderReportJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ReportCmdResult>> Results) {
  return renderDocument<ReportCmdResult>(
      "report", Names, Results, noExtra,
      [](JsonWriter &W, const ReportCmdResult &R) {
        jsonCounts(W, R.Instrs, R.Cycles, R.Counts, R.Vulnerability);
        jsonCampaign(W, R.Campaign);
        jsonValidation(W, R.Validation);
      });
}

//===----------------------------------------------------------------------===//
// Text tables
//===----------------------------------------------------------------------===//

std::string bec::renderAnalyzeText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const AnalyzeResult>> Results) {
  Table Tbl({"Workload", "Instrs", "Cycles", "Fault space", "Value-level",
             "Bit-level", "Masked", "Inferrable", "Pruned", "Vuln (bits)"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const AnalyzeResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    Tbl.row()
        .cell(Names[I])
        .cell(uint64_t(R.Instrs))
        .cell(R.Cycles)
        .cell(R.Counts.TotalFaultSpace)
        .cell(R.Counts.ValueLevelRuns)
        .cell(R.Counts.BitLevelRuns)
        .cell(R.Counts.MaskedBits)
        .cell(R.Counts.InferrableBits)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(R.Vulnerability);
  }
  return Tbl.render();
}

std::string bec::renderCampaignText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const CampaignCmdResult>> Results,
    PlanKind Plan) {
  std::string Out = "Campaign plan: " + std::string(planName(Plan)) + "\n";
  Table Tbl({"Workload", "Runs", "Masked", "Benign", "SDC", "Trap", "Hang",
             "SDC rate", "Trap rate", "Distinct", "Seconds"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const CampaignCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    auto Rate = [&](FaultEffect F) {
      return R.Campaign.Runs
                 ? double(E[size_t(F)]) / double(R.Campaign.Runs)
                 : 0.0;
    };
    Tbl.row()
        .cell(Names[I])
        .cell(R.Campaign.Runs)
        .cell(E[size_t(FaultEffect::Masked)])
        .cell(E[size_t(FaultEffect::Benign)])
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(Table::percent(Rate(FaultEffect::SDC)))
        .cell(Table::percent(Rate(FaultEffect::Trap)))
        .cell(R.Campaign.DistinctTraces)
        .cell(R.Campaign.Seconds, 2);
  }
  Out += Tbl.render();
  // Sampled campaigns: what the sample supports about its population.
  for (size_t I = 0; I < Results.size(); ++I) {
    const CampaignCmdResult &R = *Results[I];
    if (!R.Error.empty() || !R.Campaign.Sample)
      continue;
    const SampleSummary &S = *R.Campaign.Sample;
    auto CI = [&](FaultEffect F) {
      const RateInterval &V = S.CI[size_t(F)];
      return Table::percent(V.Lo) + "-" + Table::percent(V.Hi);
    };
    Out += Names[I] + ": sampled " + std::to_string(S.SampleRuns) + " of " +
           std::to_string(S.PopulationRuns) + " planned runs (seed " +
           std::to_string(S.Seed) + "); 95% CI SDC " +
           CI(FaultEffect::SDC) + ", trap " + CI(FaultEffect::Trap) + "\n";
  }
  return Out;
}

std::string bec::renderScheduleText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ScheduleCmdResult>> Results) {
  Table Tbl({"Workload", "Source vuln", "Best vuln", "Worst vuln",
             "Best vs source"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const ScheduleCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    // Positive delta = the best-reliability schedule shrinks the surface.
    double Delta =
        R.PolicyVuln[0] == 0
            ? 0.0
            : 1.0 - double(R.PolicyVuln[1]) / double(R.PolicyVuln[0]);
    Tbl.row()
        .cell(Names[I])
        .cell(R.PolicyVuln[0])
        .cell(R.PolicyVuln[1])
        .cell(R.PolicyVuln[2])
        .cell((Delta >= 0 ? "-" : "+") + Table::percent(std::fabs(Delta)));
  }
  return Tbl.render();
}

std::string bec::renderHardenText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const HardenCmdResult>> Results,
    std::span<const double> Budgets) {
  Table Tbl({"Workload", "Budget", "Cost", "Base vuln", "Residual vuln",
             "Reduction", "Dup", "Narrow", "Probes", "Valid"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const HardenCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    for (size_t B = 0; B < Budgets.size(); ++B) {
      const HardenResult &H = R.Points[B].Harden;
      const HardenValidation &V = R.Points[B].Check;
      Tbl.row()
          .cell(Names[I])
          .cell(Table::percent(Budgets[B] / 100.0))
          .cell(Table::percent(H.costPercent() / 100.0))
          .cell(H.BaselineVuln)
          .cell(H.ResidualVuln)
          .cell("-" + Table::percent(H.reduction()))
          .cell(uint64_t(H.NumDuplicated))
          .cell(uint64_t(H.NumNarrowed))
          .cell(std::to_string(V.DetectionsCaught) + "/" +
                std::to_string(V.DetectionProbes))
          .cell(V.ok() ? "ok" : "FAIL");
    }
  }
  return Tbl.render();
}

std::string bec::renderReportText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ReportCmdResult>> Results) {
  Table Tbl({"Workload", "Bit-level runs", "Pruned", "SDC", "Trap", "Hang",
             "Sound+precise", "Sound+imprecise", "Unsound", "Verdict"});
  for (size_t I = 0; I < Results.size(); ++I) {
    const ReportCmdResult &R = *Results[I];
    if (!R.Error.empty())
      continue;
    const auto &E = R.Campaign.EffectCounts;
    const ValidationResult &V = R.Validation;
    Tbl.row()
        .cell(Names[I])
        .cell(R.Counts.BitLevelRuns)
        .cell(Table::percent(R.Counts.prunedFraction()))
        .cell(E[size_t(FaultEffect::SDC)])
        .cell(E[size_t(FaultEffect::Trap)])
        .cell(E[size_t(FaultEffect::Hang)])
        .cell(V.SoundPrecisePairs)
        .cell(V.SoundImprecisePairs)
        .cell(V.UnsoundPairs + V.MaskedViolations + V.CrossViolations)
        .cell(V.sound() ? "sound" : "UNSOUND");
  }
  return Tbl.render();
}

std::string bec::renderCountsJson(const std::string &Name,
                                  const AnalyzeResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("name").value(Name);
  if (!R.Error.empty())
    W.key("error").value(R.Error);
  else
    jsonCounts(W, R.Instrs, R.Cycles, R.Counts, R.Vulnerability);
  W.endObject();
  return W.take();
}
