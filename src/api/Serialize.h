//===- api/Serialize.h - One serializer for every subcommand --------------===//
///
/// \file
/// Rendering of the five subcommand result objects (api/Queries.h), in
/// both machine-readable JSON and the CLI's human tables. All consumers —
/// the `bec` driver, the becd analysis server (src/serve/), CI jobs,
/// library users — share these functions, so a subcommand executed
/// remotely emits byte-identical output to the same subcommand executed
/// locally, and the emitted JSON shape is part of the stable API surface
/// (see BEC_API_VERSION in api/Api.h).
///
/// Each renderer takes parallel spans of target names and results (result
/// pointers may come straight from Session::evaluateAll) and returns the
/// full document including the trailing newline. Failed targets emit
/// `{"name": ..., "error": ...}` rows in JSON and are skipped in tables,
/// as the CLI always has.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_API_SERIALIZE_H
#define BEC_API_SERIALIZE_H

#include "api/Queries.h"

#include <memory>
#include <span>
#include <string>

namespace bec {

std::string
renderAnalyzeJson(std::span<const std::string> Names,
                  std::span<const std::shared_ptr<const AnalyzeResult>> Results);

std::string renderCampaignJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const CampaignCmdResult>> Results,
    PlanKind Plan);

std::string renderScheduleJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ScheduleCmdResult>> Results);

std::string
renderHardenJson(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const HardenCmdResult>> Results,
                 std::span<const double> Budgets);

std::string
renderReportJson(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const ReportCmdResult>> Results);

//===----------------------------------------------------------------------===//
// Human-readable tables (the CLI's default `--format=text` output)
//===----------------------------------------------------------------------===//

std::string
renderAnalyzeText(std::span<const std::string> Names,
                  std::span<const std::shared_ptr<const AnalyzeResult>> Results);

std::string renderCampaignText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const CampaignCmdResult>> Results,
    PlanKind Plan);

std::string renderScheduleText(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ScheduleCmdResult>> Results);

std::string
renderHardenText(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const HardenCmdResult>> Results,
                 std::span<const double> Budgets);

std::string
renderReportText(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const ReportCmdResult>> Results);

/// One target's analyze row as a bare JSON object ({"name", "instrs", ...}
/// or {"name", "error"}): the becd `counts` method's structured result.
std::string renderCountsJson(const std::string &Name, const AnalyzeResult &R);

} // namespace bec

#endif // BEC_API_SERIALIZE_H
