//===- api/Serialize.h - One JSON serializer for every subcommand ---------===//
///
/// \file
/// Machine-readable rendering of the five subcommand result objects
/// (api/Queries.h). All consumers — the `bec` driver's `--format=json`,
/// CI jobs, library users — share these functions, so `campaign` and
/// `schedule` emit through exactly the same serializer as `analyze`,
/// `report` and `harden`, and the emitted shape is part of the stable API
/// surface (see BEC_API_VERSION in api/Api.h).
///
/// Each renderer takes parallel spans of target names and results (result
/// pointers may come straight from Session::evaluateAll) and returns the
/// full document including the trailing newline. Failed targets emit
/// `{"name": ..., "error": ...}` rows, as the CLI always has.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_API_SERIALIZE_H
#define BEC_API_SERIALIZE_H

#include "api/Queries.h"

#include <memory>
#include <span>
#include <string>

namespace bec {

std::string
renderAnalyzeJson(std::span<const std::string> Names,
                  std::span<const std::shared_ptr<const AnalyzeResult>> Results);

std::string renderCampaignJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const CampaignCmdResult>> Results,
    PlanKind Plan);

std::string renderScheduleJson(
    std::span<const std::string> Names,
    std::span<const std::shared_ptr<const ScheduleCmdResult>> Results);

std::string
renderHardenJson(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const HardenCmdResult>> Results,
                 std::span<const double> Budgets);

std::string
renderReportJson(std::span<const std::string> Names,
                 std::span<const std::shared_ptr<const ReportCmdResult>> Results);

} // namespace bec

#endif // BEC_API_SERIALIZE_H
