//===- api/AnalysisSession.h - Cached, invalidation-aware analysis API ----===//
///
/// \file
/// The library facade of the BEC analysis engine. A session owns loaded
/// programs (bundled workloads, external assembly, or programs built in
/// memory) and a typed analysis registry in the style of LLVM's
/// AnalysisManager: `get<BECQuery>(P)` computes on demand, caches, and
/// records dependencies, so repeated queries — and in particular the
/// measure-and-accept loop of the selective hardener — reuse every result
/// that is still valid instead of re-running the pipeline cold.
///
/// ## Caching model
///
/// Results are cached *per program content*, not per target: every program
/// entering the session is interned into a CachedProgram shard keyed by an
/// exact binary fingerprint of its semantic state (instructions, width,
/// memory image, entry point — the name is deliberately excluded). Two
/// targets with identical content share one shard, and a mutation that
/// round-trips back to a previous content re-attaches to the old shard
/// with all of its results intact ("revalidation" in LLVM terms).
///
/// ## Invalidation contract
///
/// * `mutate(T, Fn)` bumps the target's epoch and re-interns the program.
///   All IR-dependent results of the *old* content stay with the old
///   shard; the mutated target starts from whatever the new content has
///   already cached (usually nothing). Results of other targets are never
///   touched: an IR mutation invalidates exactly the dependent analyses.
/// * `invalidate<Q>(T)` drops Q's cached result for T's current content
///   *and, transitively, every result that was computed from it* (edges
///   are recorded automatically when one query's compute function calls
///   `get` on another). Non-dependent results survive.
/// * Results handed out by `get` are `shared_ptr<const R>` and remain
///   valid for as long as the caller holds them, even across mutation,
///   invalidation, target removal, or session destruction: each result
///   keeps its shard (and therefore the Program it refers to) alive.
///
/// ## Threading rules
///
/// `get`/`intern`/`evaluateAll` may be called concurrently from any
/// thread; per-entry mutexes guarantee each analysis is computed exactly
/// once, and `evaluateAll` fans independent targets out on a caller
/// -supplied ThreadPool. `mutate`, `invalidate` and target management must
/// not race with queries *on the same target* (classic reader/writer
/// discipline; the session does not serialize them for you). Query
/// dependency cycles are programming errors and deadlock by design.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_API_ANALYSISSESSION_H
#define BEC_API_ANALYSISSESSION_H

#include "ir/Program.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace bec {

class AnalysisSession;

namespace detail {

/// One cached analysis result: compute-once state plus the intra-shard
/// dependency edges used by selective invalidation.
struct CacheEntry {
  std::mutex ComputeMutex;
  bool Ready = false; ///< Guarded by ComputeMutex.
  std::shared_ptr<const void> Result;
  /// Keys (within the same shard) of entries computed *from* this one.
  std::vector<std::string> Dependents;
};

} // namespace detail

/// An interned, immutable program plus the cache of every analysis result
/// computed over it. Created only by AnalysisSession::intern.
class CachedProgram {
  friend class AnalysisSession;

public:
  const Program &program() const { return Prog; }
  /// Exact binary fingerprint of the program's semantic content.
  const std::string &contentKey() const { return Key; }
  /// Number of results currently cached on this shard (for tests/stats).
  size_t numCachedResults() const;

private:
  Program Prog;
  std::string Key;
  mutable std::mutex Mutex; ///< Guards Entries and all Dependents lists.
  std::map<std::string, std::shared_ptr<detail::CacheEntry>> Entries;
};

using CachedProgramPtr = std::shared_ptr<CachedProgram>;

/// Aggregate cache statistics (monotonic since session construction).
struct SessionStats {
  uint64_t Hits = 0;     ///< get() served from cache.
  uint64_t Misses = 0;   ///< get() had to compute.
  uint64_t Interned = 0; ///< intern() calls.
  uint64_t Shards = 0;   ///< intern() calls that created a new shard.
};

/// See the file comment for the caching model, invalidation contract and
/// threading rules. Queries are tag types:
///
/// \code
///   struct VulnQuery {
///     using Result = uint64_t;
///     struct Options {};                      // fingerprinted options
///     static constexpr const char *Name = "vuln";
///     static std::string fingerprint(const Options &);
///     static Result compute(AnalysisSession &, const CachedProgramPtr &,
///                           const Options &);
///   };
/// \endcode
class AnalysisSession {
public:
  struct Config {
    /// When false every get() recomputes (the "cold" PR-2 pipeline);
    /// used by benchmarks to measure what caching buys.
    bool Caching = true;
    /// Maximum interned shards the session keeps *findable* for content
    /// dedup (LRU). Evicted shards stay alive while targets or handed-out
    /// results reference them.
    size_t MaxInternedShards = 4096;
  };

  using TargetId = uint32_t;

  AnalysisSession() = default;
  explicit AnalysisSession(Config C) : Cfg(C) {}

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  //===--------------------------------------------------------------------===//
  // Program interning
  //===--------------------------------------------------------------------===//

  /// Interns \p P: returns the existing shard if a program with identical
  /// semantic content was seen before, otherwise creates one. \p P must be
  /// verified with a built CFG.
  CachedProgramPtr intern(Program P);

  //===--------------------------------------------------------------------===//
  // Target management
  //===--------------------------------------------------------------------===//

  /// Adds \p P as a named target. Returns its id (ids are dense and
  /// stable; targets are append-only).
  TargetId addProgram(std::string Name, Program P);

  /// Adds a bundled workload by name (case-insensitive, as the CLI
  /// accepts). Returns nullopt for unknown names.
  std::optional<TargetId> addWorkload(std::string_view Name);

  /// Adds every bundled workload, in registry order.
  void addAllWorkloads();

  /// Reads, assembles and adds an external assembly file. On failure
  /// returns nullopt and fills \p Error with a diagnostic.
  std::optional<TargetId> addAsmFile(const std::string &Path,
                                     std::string &Error);

  size_t numTargets() const { return Targets.size(); }
  const std::string &name(TargetId T) const { return Targets[T].Name; }
  const Program &program(TargetId T) const { return Targets[T].Prog->program(); }
  const CachedProgramPtr &cached(TargetId T) const { return Targets[T].Prog; }
  /// Bumped by every mutate() call (successful or not in content terms).
  uint64_t epoch(TargetId T) const { return Targets[T].Epoch; }
  /// First target with this exact name, if any.
  std::optional<TargetId> findTarget(std::string_view Name) const;

  /// Mutates target \p T's program in place: copies the current program,
  /// applies \p Fn, rebuilds the CFG and verifies. On verifier errors the
  /// target is left unchanged and the errors are returned. On success the
  /// epoch is bumped and the target re-interned — results cached for the
  /// old content are untouched (and shared content is re-attached).
  std::vector<std::string> mutate(TargetId T,
                                  const std::function<void(Program &)> &Fn);

  //===--------------------------------------------------------------------===//
  // The typed analysis registry
  //===--------------------------------------------------------------------===//

  /// Returns query \p Q over \p P, computing and caching on demand.
  template <class Q>
  std::shared_ptr<const typename Q::Result>
  get(const CachedProgramPtr &P, const typename Q::Options &Opts = {}) {
    return getImpl<Q>(P, Opts);
  }

  /// Target-id convenience overload.
  template <class Q>
  std::shared_ptr<const typename Q::Result>
  get(TargetId T, const typename Q::Options &Opts = {}) {
    return getImpl<Q>(Targets[T].Prog, Opts);
  }

  /// Drops Q's cached result for \p T's current content and, transitively,
  /// everything computed from it. Non-dependent results survive.
  template <class Q>
  void invalidate(TargetId T, const typename Q::Options &Opts = {}) {
    invalidateKey(*Targets[T].Prog, Q::Name + fingerprintSuffix<Q>(Opts));
  }

  /// Runs \p Q over every target on \p Pool; results are returned in
  /// target order regardless of completion order. This is the engine
  /// behind the driver's `--jobs` and free for any consumer.
  template <class Q>
  std::vector<std::shared_ptr<const typename Q::Result>>
  evaluateAll(const typename Q::Options &Opts, ThreadPool &Pool) {
    std::vector<std::shared_ptr<const typename Q::Result>> Results(
        Targets.size());
    for (size_t I = 0; I < Targets.size(); ++I)
      Pool.submit([this, &Results, &Opts, I] {
        Results[I] = get<Q>(static_cast<TargetId>(I), Opts);
      });
    Pool.wait();
    return Results;
  }

  const Config &config() const { return Cfg; }
  SessionStats stats() const;

  /// Exact binary fingerprint of \p P's semantic state (exposed for
  /// tests; what intern() dedups on).
  static std::string contentKeyOf(const Program &P);

private:
  struct TargetInfo {
    std::string Name;
    uint64_t Epoch = 0;
    CachedProgramPtr Prog;
  };

  template <class Q>
  static std::string fingerprintSuffix(const typename Q::Options &Opts) {
    std::string F = Q::fingerprint(Opts);
    return F.empty() ? std::string() : "/" + F;
  }

  template <class Q>
  std::shared_ptr<const typename Q::Result>
  getImpl(const CachedProgramPtr &P, const typename Q::Options &Opts) {
    using R = typename Q::Result;
    const std::string Key = Q::Name + fingerprintSuffix<Q>(Opts);

    if (!Cfg.Caching) {
      auto Result = std::make_shared<const R>(Q::compute(*this, P, Opts));
      countMiss();
      return tieToShard(std::move(Result), P);
    }

    // Results handed to user code are tied to their shard (lifetime rule
    // in the file comment). Results fetched during another query's
    // compute *on the same shard* must NOT be: they may be stored in that
    // query's cached result, and a shard-tying deleter there would cycle
    // shard -> entry -> result -> shard and leak; the outer result's own
    // tie keeps the shard (and everything nested) alive instead.
    // Cross-shard nested fetches (e.g. a query interning a derived
    // program) stay tied: storing them in another shard's result cannot
    // cycle, and untying them would dangle once the derived shard is
    // evicted.
    bool SameShardNested = inNestedComputeOf(P.get());

    std::shared_ptr<detail::CacheEntry> E = entryFor(*P, Key);
    noteDependency(*P, Key);
    std::lock_guard<std::mutex> Lock(E->ComputeMutex);
    if (!E->Ready) {
      static const obs::Histogram ComputeUs("session.compute.us");
      obs::ScopedTimerUs Timer(ComputeUs);
      obs::Span SpanCompute(obs::traceActive() ? "query:" + Key
                                               : std::string());
      ComputeFrame Frame(this, P.get(), Key);
      E->Result = std::make_shared<const R>(Q::compute(*this, P, Opts));
      E->Ready = true;
      countMiss();
    } else {
      countHit();
    }
    auto Inner = std::static_pointer_cast<const R>(E->Result);
    return SameShardNested ? Inner : tieToShard(std::move(Inner), P);
  }

  /// Keeps the shard (and its Program) alive for as long as the caller
  /// holds the result; see the lifetime rules in the file comment.
  template <class T>
  static std::shared_ptr<const T> tieToShard(std::shared_ptr<const T> R,
                                             CachedProgramPtr P) {
    const T *Raw = R.get();
    return std::shared_ptr<const T>(
        Raw, [R = std::move(R), P = std::move(P)](const T *) {});
  }

  /// RAII frame marking "Key of Shard is being computed" so nested get()
  /// calls can record dependency edges.
  struct ComputeFrame {
    ComputeFrame(AnalysisSession *S, CachedProgram *Shard, std::string Key);
    ~ComputeFrame();
  };

  std::shared_ptr<detail::CacheEntry> entryFor(CachedProgram &Shard,
                                               const std::string &Key);
  void noteDependency(CachedProgram &Shard, const std::string &Key);
  /// True while this thread is inside one of this session's Q::compute
  /// calls *on \p Shard* (the innermost active frame matches both).
  bool inNestedComputeOf(const CachedProgram *Shard) const;
  void invalidateKey(CachedProgram &Shard, const std::string &Key);
  void countHit();
  void countMiss();

  Config Cfg;
  std::vector<TargetInfo> Targets;

  /// Content-addressed shard index with LRU eviction (eviction only makes
  /// a shard un-findable; live references keep it working).
  mutable std::mutex InternMutex;
  std::list<CachedProgramPtr> InternLRU; ///< Front = most recent.
  std::map<std::string, std::list<CachedProgramPtr>::iterator> InternIndex;

  mutable std::mutex StatsMutex;
  SessionStats Stats;
};

} // namespace bec

#endif // BEC_API_ANALYSISSESSION_H
