//===- api/Queries.h - The typed analysis registry's query catalog --------===//
///
/// \file
/// Every analysis the session can compute, as AnalysisSession query tags
/// (see AnalysisSession.h for the tag shape). Two layers:
///
///  * **Primitive queries** wrap one pipeline stage each — VerifyQuery,
///    TraceQuery, LivenessQuery, UseDefQuery, BitValuesQuery, BECQuery,
///    CountsQuery, VulnQuery, RankQuery, CampaignQuery, ValidationQuery.
///    They never fail; callers decide what a non-finishing trace means.
///    BECQuery composes from the cached sub-analyses (dependency-tracked),
///    so invalidating e.g. TraceQuery leaves Liveness/UseDef/BEC intact.
///
///  * **Subcommand queries** reproduce the five `bec` CLI pipelines
///    (AnalyzeQuery, CampaignCmdQuery, ScheduleCmdQuery, HardenCmdQuery,
///    ReportCmdQuery) as cached result objects carrying an Error field —
///    the driver shrinks to argument parsing plus rendering, and any
///    library consumer gets the same pipelines (and `--jobs`-style
///    parallelism via Session::evaluateAll) for free.
///
/// The selective hardener's measure-and-accept loop also lives behind this
/// interface (hardenProgram(AnalysisSession&, ...)): every candidate
/// measurement interns the trial program and pulls Verify/Trace/BEC
/// through the cache, so the accepted candidate's full analysis is reused
/// as the next round's baseline instead of being recomputed cold — the
/// headline win benchmarked by bench_SessionReuse.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_API_QUERIES_H
#define BEC_API_QUERIES_H

#include "api/AnalysisSession.h"
#include "core/Metrics.h"
#include "fi/Campaign.h"
#include "fi/Engine.h"
#include "fi/Validation.h"
#include "harden/Harden.h"
#include "harden/VulnerabilityRank.h"
#include "sched/ListScheduler.h"

#include <string>
#include <vector>

namespace bec {

//===----------------------------------------------------------------------===//
// Primitive queries
//===----------------------------------------------------------------------===//

struct VerifyQuery {
  using Result = std::vector<std::string>;
  struct Options {};
  static constexpr const char *Name = "verify";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

/// The golden run (full recording). Never fails: a trap/hang outcome is
/// part of the result.
struct TraceQuery {
  using Result = Trace;
  struct Options {};
  static constexpr const char *Name = "trace";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

struct LivenessQuery {
  using Result = Liveness;
  struct Options {};
  static constexpr const char *Name = "liveness";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

struct UseDefQuery {
  using Result = UseDef;
  struct Options {};
  static constexpr const char *Name = "usedef";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

struct BitValuesQuery {
  using Result = BitValueAnalysis;
  struct Options {};
  static constexpr const char *Name = "bitvalues";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

/// The full BEC coalescing, composed from the cached sub-analyses.
struct BECQuery {
  using Result = BECAnalysis;
  using Options = BECOptions;
  static constexpr const char *Name = "bec";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

/// Table III counts over the golden trace (default BEC options).
struct CountsQuery {
  using Result = FaultInjectionCounts;
  struct Options {};
  static constexpr const char *Name = "counts";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

/// The live-fault-site vulnerability over the golden trace.
struct VulnQuery {
  using Result = uint64_t;
  struct Options {};
  static constexpr const char *Name = "vuln";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

/// Per-site vulnerability attribution (the hardener's ranking).
struct RankQuery {
  using Result = VulnerabilityRank;
  struct Options {};
  static constexpr const char *Name = "rank";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

/// Plans and executes one fault-injection campaign through the sharded
/// engine (fi/Engine.h), reusing the session's cached BEC analysis and
/// golden trace for pruning.
struct CampaignQuery {
  using Result = CampaignResult;
  struct Options {
    PlanKind Plan = PlanKind::BitLevel;
    uint64_t MaxCycles = 0;
    /// Stratified sampling of the enumerated plan (0 = execute it all);
    /// the result then carries per-effect Wilson confidence intervals.
    uint64_t SampleSize = 0;
    uint64_t SampleSeed = 1;
    /// Prefix-checkpointed execution (PlanOptions::PrefixCheckpoint;
    /// `--prefix-checkpoint[=K|=off]`). Fingerprinted only when it
    /// departs from the default (on, auto period), so existing cache
    /// keys are unchanged; it never changes a result byte either way —
    /// only the telemetry fields reports omit.
    bool PrefixCheckpoint = true;
    uint64_t CheckpointEveryK = 0;
    /// Execution-side knobs (threads, sharding, checkpoint/resume,
    /// progress). Threads and the progress callback are NOT
    /// fingerprinted — they never change the result value, so any
    /// thread count hits the same cache entry; checkpointing,
    /// interruption limits and shard geometry ARE, because they can
    /// surface in the result (Error, Interrupted, Shards). Corollary:
    /// a cache hit skips execution entirely, including its checkpoint
    /// writes and progress callbacks.
    CampaignExecOptions Exec;
  };
  static constexpr const char *Name = "campaign";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

/// Empirical soundness validation (Table II).
struct ValidationQuery {
  using Result = ValidationResult;
  struct Options {
    uint64_t MaxCycles = 0;
  };
  static constexpr const char *Name = "validation";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

//===----------------------------------------------------------------------===//
// The selective hardener on the session
//===----------------------------------------------------------------------===//

/// Session-backed hardening: identical results to the classic
/// hardenProgram(Program, ...), but every candidate measurement goes
/// through the session cache, so round baselines, the final re-analysis,
/// sweeps over several budgets and the closed-loop validation all reuse
/// work. If the golden run of \p P does not finish, the result is the
/// unmodified program with no sites (and validateHardening on it reports
/// failure) — never an abort.
HardenResult hardenProgram(AnalysisSession &S, const CachedProgramPtr &P,
                           const HardenOptions &Opts = {});

/// Session-backed closed-loop validation of \p R against \p Baseline.
HardenValidation validateHardening(AnalysisSession &S,
                                   const CachedProgramPtr &Baseline,
                                   const HardenResult &R);

/// One budget's Pareto point plus its closed-loop validation.
struct HardenPoint {
  HardenResult Harden;
  HardenValidation Check;
};

struct HardenQuery {
  using Result = HardenPoint;
  using Options = HardenOptions;
  static constexpr const char *Name = "harden";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

//===----------------------------------------------------------------------===//
// Subcommand queries (the five `bec` pipelines as result objects)
//===----------------------------------------------------------------------===//

struct AnalyzeResult {
  std::string Error; ///< Non-empty on failure; other fields then unset.
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  FaultInjectionCounts Counts;
  uint64_t Vulnerability = 0;
};

struct AnalyzeQuery {
  using Result = AnalyzeResult;
  struct Options {};
  static constexpr const char *Name = "cmd.analyze";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

struct CampaignCmdResult {
  std::string Error;
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  CampaignResult Campaign;
};

struct CampaignCmdQuery {
  using Result = CampaignCmdResult;
  using Options = CampaignQuery::Options;
  static constexpr const char *Name = "cmd.campaign";
  static std::string fingerprint(const Options &O) {
    return CampaignQuery::fingerprint(O);
  }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

struct ScheduleCmdResult {
  std::string Error;
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  /// Vulnerability per policy: [source, best, worst].
  uint64_t PolicyVuln[3] = {0, 0, 0};
  /// Assembly of the scheduled program per policy (same order).
  std::string PolicyAsm[3];
};

struct ScheduleCmdQuery {
  using Result = ScheduleCmdResult;
  struct Options {};
  static constexpr const char *Name = "cmd.schedule";
  static std::string fingerprint(const Options &) { return {}; }
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &);
};

struct HardenCmdResult {
  std::string Error;
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  /// One entry per requested budget, in request order.
  std::vector<HardenPoint> Points;
};

struct HardenCmdQuery {
  using Result = HardenCmdResult;
  struct Options {
    std::vector<double> Budgets = {10.0};
    /// Budget-independent knobs; BudgetPercent is overridden per entry.
    HardenOptions Base;
  };
  static constexpr const char *Name = "cmd.harden";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

struct ReportCmdResult {
  std::string Error;
  uint32_t Instrs = 0;
  uint64_t Cycles = 0;
  FaultInjectionCounts Counts;
  uint64_t Vulnerability = 0;
  CampaignResult Campaign;
  ValidationResult Validation;
};

struct ReportCmdQuery {
  using Result = ReportCmdResult;
  struct Options {
    uint64_t MaxCycles = 0;
  };
  static constexpr const char *Name = "cmd.report";
  static std::string fingerprint(const Options &O);
  static Result compute(AnalysisSession &S, const CachedProgramPtr &P,
                        const Options &O);
};

} // namespace bec

#endif // BEC_API_QUERIES_H
