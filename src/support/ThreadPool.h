//===- support/ThreadPool.h - Minimal fixed-size worker pool --------------===//
///
/// \file
/// A fixed-size thread pool for embarrassingly parallel per-workload jobs
/// (the driver's `--jobs N`). Tasks are opaque closures; results travel
/// through whatever the closure captures. `ThreadPool::run` is the common
/// case: submit every task, then block until all of them have finished.
///
/// With `NumThreads <= 1` no threads are spawned and tasks run inline on
/// the caller, which keeps single-threaded runs deterministic and easy to
/// debug (and is why analyses below the driver never need to be
/// thread-aware).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_THREADPOOL_H
#define BEC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bec {

/// Fixed-size pool executing queued tasks in submission order (per worker).
class ThreadPool {
public:
  /// Creates a pool of \p NumThreads workers. 0 or 1 means "run inline".
  explicit ThreadPool(unsigned NumThreads) {
    if (NumThreads <= 1)
      return;
    Workers.reserve(NumThreads);
    for (unsigned I = 0; I < NumThreads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  /// Enqueues \p Task. Inline pools execute it immediately.
  void submit(std::function<void()> Task) {
    if (Workers.empty()) {
      Task();
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Pending.push(std::move(Task));
      ++Unfinished;
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every submitted task has completed.
  void wait() {
    if (Workers.empty())
      return;
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Unfinished == 0; });
  }

  /// Submits all of \p Tasks and waits for them.
  void run(std::vector<std::function<void()>> Tasks) {
    for (std::function<void()> &T : Tasks)
      submit(std::move(T));
    wait();
  }

  /// Number of worker threads (0 when running inline).
  size_t size() const { return Workers.size(); }

  /// Clamps a user-supplied --jobs value to something sane.
  static unsigned clampJobs(unsigned Requested) {
    unsigned HW = std::thread::hardware_concurrency();
    if (HW == 0)
      HW = 1;
    if (Requested == 0)
      Requested = HW;
    return Requested < HW ? Requested : HW;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WakeWorkers.wait(Lock, [this] { return Stopping || !Pending.empty(); });
        if (Pending.empty())
          return; // Stopping, queue drained.
        Task = std::move(Pending.front());
        Pending.pop();
      }
      Task();
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (--Unfinished == 0)
          AllDone.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Pending;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable AllDone;
  size_t Unfinished = 0;
  bool Stopping = false;
};

} // namespace bec

#endif // BEC_SUPPORT_THREADPOOL_H
