//===- support/Debug.h - Fatal-error and unreachable helpers -------------===//
///
/// \file
/// Minimal stand-ins for llvm_unreachable / report_fatal_error. Library code
/// uses these for programmatic errors (invariant violations); recoverable
/// errors (e.g. assembler diagnostics) are returned as values instead.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_DEBUG_H
#define BEC_SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace bec {

/// Prints \p Message to stderr and aborts. For invariant violations that
/// must be diagnosed even in release builds.
[[noreturn]] inline void reportFatalError(const char *Message) {
  std::fprintf(stderr, "bec fatal error: %s\n", Message);
  std::abort();
}

} // namespace bec

/// Marks a point in the code that must never be reached.
#define bec_unreachable(MSG) ::bec::reportFatalError("unreachable: " MSG)

#endif // BEC_SUPPORT_DEBUG_H
