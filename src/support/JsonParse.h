//===- support/JsonParse.h - Minimal JSON reader for the wire protocol ----===//
///
/// \file
/// The reading half of the project's JSON story (support/Json.h is the
/// writing half): a small recursive-descent parser producing a JsonValue
/// tree. Used by the becd wire protocol (serve/Protocol.h) to decode
/// request and response frames, and by anything else that needs to consume
/// the driver's `--format=json` output. Full RFC 8259 value coverage with
/// two deliberate server-hardening limits: nesting depth and input size
/// are bounded, so a hostile frame cannot blow the stack or the heap.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_JSONPARSE_H
#define BEC_SUPPORT_JSONPARSE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bec {

/// One parsed JSON value. Object members preserve source order (and keep
/// duplicates; lookups return the first occurrence, as most servers do).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Object member lookup; nullptr when not an object or the key is
  /// absent.
  const JsonValue *member(std::string_view Key) const;

  /// Typed accessors: engaged only when the value has the matching kind
  /// (and, for the integer forms, is exactly representable).
  std::optional<bool> asBool() const;
  std::optional<double> asDouble() const;
  std::optional<int64_t> asI64() const;
  std::optional<uint64_t> asU64() const;
  const std::string *asString() const;
  const std::vector<JsonValue> *asArray() const;
  /// Ordered object members (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>> &objectMembers() const {
    return Obj;
  }

  /// Convenience: member(Key) as a string/u64, nullopt on any mismatch.
  const std::string *memberString(std::string_view Key) const;
  std::optional<uint64_t> memberU64(std::string_view Key) const;

  /// Re-serializes this value as compact JSON (numbers round-trip through
  /// their parsed representation; key order is preserved).
  std::string toJson() const;

  // Construction surface for the parser (and tests).
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool B);
  static JsonValue makeInt(int64_t V);
  static JsonValue makeDouble(double V);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray(std::vector<JsonValue> Elems);
  static JsonValue
  makeObject(std::vector<std::pair<std::string, JsonValue>> Members);

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool B = false;
  /// Numbers carry both representations: IsInt marks source literals with
  /// no fraction/exponent that fit int64 (the common case for ids and
  /// counters, where double would lose precision past 2^53).
  bool IsInt = false;
  int64_t Int = 0;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses one JSON document (the whole of \p Text modulo whitespace).
/// Returns nullopt on any syntax error and, when \p Error is non-null,
/// fills it with a byte-offset diagnostic.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Error = nullptr);

} // namespace bec

#endif // BEC_SUPPORT_JSONPARSE_H
