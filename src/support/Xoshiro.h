//===- support/Xoshiro.h - Deterministic PRNG for tests and workloads ----===//
///
/// \file
/// xoshiro256** generator. Used by property-based tests and synthetic
/// workload generators; seeded explicitly so every run is reproducible
/// (per the coding standards, no global state and no nondeterminism).
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_XOSHIRO_H
#define BEC_SUPPORT_XOSHIRO_H

#include <cstdint>

namespace bec {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, reimplemented here).
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    // splitmix64 seeding, as recommended by the authors.
    for (auto &Word : State) {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      Word = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

  uint64_t State[4];
};

} // namespace bec

#endif // BEC_SUPPORT_XOSHIRO_H
