//===- support/UnionFind.h - Disjoint-set forest with min-id roots -------===//
///
/// \file
/// Union-find (disjoint-set) structure used to represent the equivalence
/// relation over fault indices. The representative of each class is the
/// *minimum* element id in the class, which gives two properties the BEC
/// analysis relies on:
///   * index 0 (the distinguished class s0 of masked faults) is always its
///     own class representative, and
///   * results are deterministic regardless of merge order.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_UNIONFIND_H
#define BEC_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bec {

/// Disjoint-set forest over dense ids [0, size) with minimum-id
/// representatives and path compression.
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(uint32_t Size) { reset(Size); }

  /// Re-initializes to \p Size singleton classes.
  void reset(uint32_t Size) {
    Parent.resize(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Parent[I] = I;
    NumClasses = Size;
  }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Number of distinct classes currently in the relation.
  uint32_t numClasses() const { return NumClasses; }

  /// Returns the class representative (minimum member id) of \p Id.
  uint32_t find(uint32_t Id) const {
    assert(Id < Parent.size() && "id out of range");
    uint32_t Root = Id;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression (does not change observable behaviour).
    while (Parent[Id] != Root) {
      uint32_t Next = Parent[Id];
      Parent[Id] = Root;
      Id = Next;
    }
    return Root;
  }

  /// Merges the classes of \p A and \p B. Returns true if the relation
  /// changed (the two were in distinct classes).
  bool unite(uint32_t A, uint32_t B) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return false;
    // Keep the minimum id as the representative so s0 stays canonical.
    if (RA > RB)
      std::swap(RA, RB);
    Parent[RB] = RA;
    --NumClasses;
    return true;
  }

  /// True if \p A and \p B are in the same class.
  bool connected(uint32_t A, uint32_t B) const { return find(A) == find(B); }

private:
  mutable std::vector<uint32_t> Parent;
  uint32_t NumClasses = 0;
};

} // namespace bec

#endif // BEC_SUPPORT_UNIONFIND_H
