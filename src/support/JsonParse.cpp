//===- support/JsonParse.cpp - Minimal JSON reader -------------------------===//

#include "support/JsonParse.h"

#include "support/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace bec;

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::member(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::optional<bool> JsonValue::asBool() const {
  if (K != Kind::Bool)
    return std::nullopt;
  return B;
}

std::optional<double> JsonValue::asDouble() const {
  if (K != Kind::Number)
    return std::nullopt;
  return IsInt ? static_cast<double>(Int) : Num;
}

std::optional<int64_t> JsonValue::asI64() const {
  if (K != Kind::Number || !IsInt)
    return std::nullopt;
  return Int;
}

std::optional<uint64_t> JsonValue::asU64() const {
  if (K != Kind::Number || !IsInt || Int < 0)
    return std::nullopt;
  return static_cast<uint64_t>(Int);
}

const std::string *JsonValue::asString() const {
  return K == Kind::String ? &Str : nullptr;
}

const std::vector<JsonValue> *JsonValue::asArray() const {
  return K == Kind::Array ? &Arr : nullptr;
}

const std::string *JsonValue::memberString(std::string_view Key) const {
  const JsonValue *V = member(Key);
  return V ? V->asString() : nullptr;
}

std::optional<uint64_t> JsonValue::memberU64(std::string_view Key) const {
  const JsonValue *V = member(Key);
  return V ? V->asU64() : std::nullopt;
}

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::makeInt(int64_t I) {
  JsonValue V;
  V.K = Kind::Number;
  V.IsInt = true;
  V.Int = I;
  return V;
}

JsonValue JsonValue::makeDouble(double D) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = D;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> Elems) {
  JsonValue V;
  V.K = Kind::Array;
  V.Arr = std::move(Elems);
  return V;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> Members) {
  JsonValue V;
  V.K = Kind::Object;
  V.Obj = std::move(Members);
  return V;
}

namespace {

void writeValue(JsonWriter &W, const JsonValue &V);

void writeContainer(JsonWriter &W, const JsonValue &V) {
  if (const auto *Arr = V.asArray()) {
    W.beginArray();
    for (const JsonValue &E : *Arr)
      writeValue(W, E);
    W.endArray();
  }
}

void writeValue(JsonWriter &W, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    // JsonWriter has no null; emit through the double path's null spelling.
    W.value(std::nan(""));
    return;
  case JsonValue::Kind::Bool:
    W.value(*V.asBool());
    return;
  case JsonValue::Kind::Number:
    if (auto I = V.asI64())
      W.value(*I);
    else
      W.value(*V.asDouble());
    return;
  case JsonValue::Kind::String:
    W.value(*V.asString());
    return;
  case JsonValue::Kind::Array:
    writeContainer(W, V);
    return;
  case JsonValue::Kind::Object:
    W.beginObject();
    // Member iteration is not part of the public surface; serialize via a
    // lookup-free path by reconstructing from the ordered pairs.
    for (const auto &[Key, Member] : V.objectMembers()) {
      W.key(Key);
      writeValue(W, Member);
    }
    W.endObject();
    return;
  }
}

} // namespace

std::string JsonValue::toJson() const {
  JsonWriter W;
  writeValue(W, *this);
  return W.take();
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace bec {

class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    if (!parseValue(V, 0))
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing characters after value");
      return std::nullopt;
    }
    return V;
  }

private:
  /// Nesting bound: a hostile frame must not be able to exhaust the stack.
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = "offset " + std::to_string(Pos) + ": " + Message;
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!literal("true"))
        return fail("invalid literal");
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("invalid literal");
      Out = JsonValue::makeBool(false);
      return true;
    case 'n':
      if (!literal("null"))
        return fail("invalid literal");
      Out = JsonValue::makeNull();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    Out.K = JsonValue::Kind::Object;
    skipSpace();
    if (consume('}'))
      return true;
    for (;;) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected member key");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return fail("expected ':' after member key");
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    Out.K = JsonValue::Kind::Array;
    skipSpace();
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Elem;
      if (!parseValue(Elem, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(Elem));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (unsigned I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      uint32_t Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<uint32_t>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<uint32_t>(C - 'A') + 10;
      else
        return fail("invalid \\u escape");
      Out = Out * 16 + Digit;
    }
    return true;
  }

  void appendUtf8(std::string &S, uint32_t CP) {
    if (CP < 0x80) {
      S += static_cast<char>(CP);
    } else if (CP < 0x800) {
      S += static_cast<char>(0xC0 | (CP >> 6));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      S += static_cast<char>(0xE0 | (CP >> 12));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (CP >> 18));
      S += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (++Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t CP;
        if (!parseHex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00..\uDFFF.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          uint32_t Low;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, CP);
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool AnyDigits = false;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      ++Pos;
      AnyDigits = true;
    }
    if (!AnyDigits)
      return fail("invalid value");
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Literal(Text.substr(Start, Pos - Start));
    Out.K = JsonValue::Kind::Number;
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Literal.c_str(), &End, 10);
      if (errno == 0 && End == Literal.c_str() + Literal.size()) {
        Out.IsInt = true;
        Out.Int = V;
        return true;
      }
      // Out-of-range integer literal: fall back to double precision.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Literal.c_str(), &End);
    if (End != Literal.c_str() + Literal.size())
      return fail("invalid number");
    Out.IsInt = false;
    Out.Num = D;
    return true;
  }

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace bec

std::optional<JsonValue> bec::parseJson(std::string_view Text,
                                        std::string *Error) {
  if (Error)
    Error->clear();
  return JsonParser(Text, Error).run();
}
