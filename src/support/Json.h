//===- support/Json.h - Minimal JSON writer for machine-readable output --===//
///
/// \file
/// A small streaming JSON writer used by the `bec` driver's
/// `--format=json` mode so CI jobs and scripts can consume analysis
/// results without scraping tables. Supports the JSON subset the driver
/// needs: objects, arrays, strings, integers, doubles and booleans, with
/// correct string escaping and comma placement. No dependencies, no
/// parsing.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_JSON_H
#define BEC_SUPPORT_JSON_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace bec {

/// Streaming writer producing compact, valid JSON into a std::string.
class JsonWriter {
public:
  std::string take() {
    assert(Nesting.empty() && "unbalanced begin/end");
    return std::move(Out);
  }

  JsonWriter &beginObject() {
    comma();
    Out += '{';
    Nesting.push_back(Scope::Object);
    return *this;
  }
  JsonWriter &endObject() {
    assert(!Nesting.empty() && Nesting.back() == Scope::Object);
    Nesting.pop_back();
    Out += '}';
    return *this;
  }
  JsonWriter &beginArray() {
    comma();
    Out += '[';
    Nesting.push_back(Scope::Array);
    return *this;
  }
  JsonWriter &endArray() {
    assert(!Nesting.empty() && Nesting.back() == Scope::Array);
    Nesting.pop_back();
    Out += ']';
    return *this;
  }

  /// Emits a member key; must be followed by exactly one value.
  JsonWriter &key(std::string_view Name) {
    assert(!Nesting.empty() && Nesting.back() == Scope::Object);
    comma();
    quoted(Name);
    Out += ':';
    PendingValue = true;
    return *this;
  }

  JsonWriter &value(std::string_view S) {
    comma();
    quoted(S);
    return *this;
  }
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(uint64_t V) {
    comma();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(int64_t V) {
    comma();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V) {
    comma();
    Out += V ? "true" : "false";
    return *this;
  }
  JsonWriter &value(double V) {
    comma();
    if (!std::isfinite(V)) {
      Out += "null"; // JSON has no Inf/NaN.
      return *this;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    Out += Buf;
    return *this;
  }

private:
  enum class Scope : uint8_t { Object, Array };

  /// Emits a separating comma when needed and tracks first-element state.
  void comma() {
    if (PendingValue) {
      PendingValue = false; // Key already placed its separator.
      return;
    }
    if (!Out.empty()) {
      char Last = Out.back();
      if (Last != '{' && Last != '[' && Last != ':')
        if (!Nesting.empty())
          Out += ',';
    }
  }

  void quoted(std::string_view S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\r':
        Out += "\\r";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  std::string Out;
  std::vector<Scope> Nesting;
  bool PendingValue = false;
};

} // namespace bec

#endif // BEC_SUPPORT_JSON_H
