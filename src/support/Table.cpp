//===- support/Table.cpp - Plain-text table rendering --------------------===//

#include "support/Table.h"

#include <cassert>
#include <cctype>
#include <cstdio>

using namespace bec;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

Table &Table::row() {
  Rows.emplace_back();
  return *this;
}

Table &Table::cell(std::string Text) {
  assert(!Rows.empty() && "call row() before cell()");
  Rows.back().push_back(std::move(Text));
  return *this;
}

Table &Table::cell(uint64_t Value) { return cell(withSeparators(Value)); }

Table &Table::cell(double Value, unsigned Decimals, const char *Suffix) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f%s", Decimals, Value, Suffix);
  return cell(std::string(Buffer));
}

std::string Table::withSeparators(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  unsigned Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Result.push_back(' ');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

std::string Table::percent(double Fraction) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.2f%%", Fraction * 100.0);
  return std::string(Buffer);
}

/// True if the cell consists of digits, separators and numeric punctuation,
/// in which case it is right-aligned.
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != ' ' && C != '.' &&
        C != '%' && C != '-' && C != '+' && C != 'x')
      return false;
  return true;
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (I)
        Out += "  ";
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total ? Total - 2 : 0, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}
