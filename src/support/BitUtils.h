//===- support/BitUtils.h - Fixed-width bit manipulation helpers ---------===//
///
/// \file
/// Small helpers for working with values of a configurable register width
/// (1..64 bits). All machine values in this project are kept in a uint64_t
/// and masked to the active width; these helpers centralize the masking and
/// sign handling so the simulator and the abstract domain agree bit-exactly.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_BITUTILS_H
#define BEC_SUPPORT_BITUTILS_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace bec {

/// Maximum register width supported by the abstract domain and simulator.
inline constexpr unsigned MaxRegWidth = 64;

/// Returns a mask with the low \p Width bits set.
inline uint64_t lowBitMask(unsigned Width) {
  assert(Width >= 1 && Width <= MaxRegWidth && "unsupported register width");
  return Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
}

/// Truncates \p Value to \p Width bits.
inline uint64_t truncate(uint64_t Value, unsigned Width) {
  return Value & lowBitMask(Width);
}

/// Returns bit \p Index (0 = LSB) of \p Value.
inline bool testBit(uint64_t Value, unsigned Index) {
  assert(Index < MaxRegWidth && "bit index out of range");
  return (Value >> Index) & 1;
}

/// Returns \p Value with bit \p Index flipped, truncated to \p Width bits.
inline uint64_t flipBit(uint64_t Value, unsigned Index, unsigned Width) {
  assert(Index < Width && "bit index beyond register width");
  return truncate(Value ^ (uint64_t(1) << Index), Width);
}

/// Sign-extends the \p Width-bit value \p Value to a signed 64-bit integer.
inline int64_t signExtend(uint64_t Value, unsigned Width) {
  assert(Width >= 1 && Width <= MaxRegWidth && "unsupported register width");
  if (Width == 64)
    return static_cast<int64_t>(Value);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  uint64_t Truncated = truncate(Value, Width);
  return static_cast<int64_t>((Truncated ^ SignBit) - SignBit);
}

/// True if the sign bit of the \p Width-bit value is set.
inline bool isNegative(uint64_t Value, unsigned Width) {
  return testBit(Value, Width - 1);
}

/// Population count over the low \p Width bits.
inline unsigned popCount(uint64_t Value, unsigned Width) {
  return static_cast<unsigned>(std::popcount(truncate(Value, Width)));
}

/// The most negative signed value representable in \p Width bits.
inline uint64_t signedMinValue(unsigned Width) {
  return uint64_t(1) << (Width - 1);
}

/// All-ones value of \p Width bits (unsigned max, signed -1).
inline uint64_t allOnesValue(unsigned Width) { return lowBitMask(Width); }

} // namespace bec

#endif // BEC_SUPPORT_BITUTILS_H
