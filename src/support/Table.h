//===- support/Table.h - Plain-text table rendering for reports ----------===//
///
/// \file
/// A small column-aligned table renderer used by the benchmark harnesses to
/// print the paper's tables. Library code renders into a std::string; only
/// tools write to stdout.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_TABLE_H
#define BEC_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace bec {

/// Column-aligned plain-text table. Cells are strings; numeric helpers
/// format with thousands separators to match the paper's layout.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table &row();

  /// Appends a cell to the current row.
  Table &cell(std::string Text);
  Table &cell(uint64_t Value);
  Table &cell(double Value, unsigned Decimals = 2, const char *Suffix = "");

  /// Renders the table, right-aligning numeric-looking cells.
  std::string render() const;

  /// Formats \p Value with ' ' thousands separators (paper style).
  static std::string withSeparators(uint64_t Value);

  /// Formats a percentage with two decimals, e.g. "13.71%".
  static std::string percent(double Fraction);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace bec

#endif // BEC_SUPPORT_TABLE_H
