//===- support/StringUtils.h - Small shared string helpers ----------------===//
///
/// \file
/// String utilities shared by the CLI, the workload registry and the JSON
/// serializer. ASCII-only by design: workload names, option spellings and
/// JSON keys never carry locale-dependent characters.
///
//===----------------------------------------------------------------------===//

#ifndef BEC_SUPPORT_STRINGUTILS_H
#define BEC_SUPPORT_STRINGUTILS_H

#include <cctype>
#include <string>
#include <string_view>

namespace bec {

/// Byte-wise ASCII lowering (no locale).
inline std::string toLowerAscii(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

} // namespace bec

#endif // BEC_SUPPORT_STRINGUTILS_H
